// Sharded parallel execution runtime.
//
// Partitions a time-sorted packet stream across N worker threads — each
// owning a private deep clone of the primary switch's pipeline (tables +
// register banks) — by a configurable flow-key hash, while preserving exact
// single-threaded query semantics (docs/runtime.md):
//
//   * demux thread:  shard = hash(flow key) % N, push into the worker's
//     bounded SPSC ring (backpressure counted, never dropped);
//   * windows are the synchronization unit: on each epoch boundary the
//     demux fences every worker, merges the per-worker state banks
//     (count-min rows by element-wise add, bloom rows by or) back into the
//     primary switch's banks, drains the per-worker report buffers into the
//     attached Analyzer/sink, snapshots per-query results, zeroes replica
//     state, and only then releases the next window's packets;
//   * rule install/withdraw mid-stream (the paper's core claim) rides the
//     same barrier: mutations queue and apply atomically while all workers
//     are quiesced, through the ordinary Controller; direct Controller
//     mutation while a window is open is rejected by the quiesce guard;
//   * a watchdog tolerates shard-worker death: a worker whose ring closed
//     (crash) or whose heartbeat froze with work outstanding (hang) is
//     failed over — its flow-key buckets are redirected to one surviving
//     shard, its window-partial register banks merged into that successor,
//     its pending reports delivered, and its ring backlog redistributed, so
//     window reports stay complete across the failure (docs/fault.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/controller.h"
#include "core/newton_switch.h"
#include "runtime/shard_hash.h"
#include "runtime/worker.h"
#include "telemetry/telemetry.h"
#include "trace/trace_gen.h"

namespace newton {

struct RuntimeOptions {
  std::size_t num_shards = 1;
  std::size_t queue_capacity = 4096;  // per-worker ring slots
  // Hot-path batch size: the demux stages up to this many packets per
  // shard before one bulk ring push, and workers drain/execute in bursts
  // of the same size (docs/runtime.md "Hot path").  1 reproduces the
  // item-at-a-time handoff exactly; results are byte-identical at any
  // value — only the synchronization amortization changes.
  std::size_t burst = 64;
  ShardKey shard_key = ShardKey::five_tuple();
  // Keep per-window merged result snapshots (tests compare them across
  // shard counts; benches turn this off).
  bool record_snapshots = true;
  // Registry receiving the runtime's metrics (windows, ring stalls, window
  // merge durations, shard occupancy).  Defaults to the process-global
  // registry; benches and determinism tests pass private instances so
  // sequential runs do not accumulate.
  telemetry::Registry* registry = nullptr;
  // Watchdog deadline: a worker that makes no progress (heartbeat frozen)
  // for this long while work is outstanding is declared failed and its
  // shard range fails over.  0 disables the deadline (death is then only
  // detected via a closed ring).
  uint64_t watchdog_stall_ms = 2000;
  // Lower installed chains into compiled per-query executors in every
  // worker (src/compile/, docs/compile.md); the interpreter remains the
  // fallback for uncovered shapes.  Forced off by the NEWTON_NO_JIT
  // environment variable (checked once at construction).
  bool jit = true;
  // Master switch for the compiled executors' three-phase burst schedule
  // (batched hashing + index precompute + prefetch, docs/compile.md);
  // false reverts to plain op-major compiled execution.  Benchmark
  // baseline and last-resort hatch; byte-identical either way.
  bool jit_burst_schedule = true;
  // Deduplicate identical digests across a compiled run's H ops (hash-CSE,
  // docs/compile.md).  Purely an optimization; results are byte-identical
  // either way.
  bool jit_hash_cse = true;
  // How many burst lanes ahead of the compiled apply loop the state-bank
  // prefetch stream runs; 0 disables prefetch hints (precomputed indices
  // and the rest of the burst schedule stay on).  Forced to 0 by the
  // NEWTON_NO_PREFETCH environment variable (checked once at
  // construction).  Advisory only — byte-identical at any value.
  std::size_t prefetch_distance = 8;
  // Recompile coalescing under churn (docs/admission.md): after a barrier
  // applies rule mutations, the replica reload defers chain lowering and
  // the workers run the (byte-identical) interpreter until this many
  // consecutive mutation-free barriers pass, then ONE rebuild covers the
  // whole batch of updates.  0 rebuilds eagerly at every reload (the
  // pre-churn behavior).
  std::size_t jit_debounce_windows = 1;
};

// Aggregated per-run totals, derived from the same values the telemetry
// registry exports (kept as a plain struct so callers can read one run's
// numbers without diffing registry snapshots).
struct RuntimeStats {
  uint64_t packets_in = 0;            // packets demuxed into the shards
  uint64_t windows = 0;               // window barriers completed
  uint64_t backpressure_stalls = 0;   // failed ring pushes (queue full)
  uint64_t rule_updates_applied = 0;  // quiesced mutations applied
  uint64_t reports = 0;               // reports forwarded to the sink(s)
  uint64_t worker_failovers = 0;      // shard workers failed over
  uint64_t redistributed_packets = 0; // ring backlog moved to a successor
  uint64_t abandoned_packets = 0;     // backlog lost with a hung worker
  uint64_t installs_rejected = 0;     // queued installs admission rejected
  uint64_t jit_recompiles = 0;        // chain-JIT rebuild events (coalesced)
  std::size_t live_shards = 0;        // workers still processing
  std::vector<WorkerStats> workers;   // per shard, refreshed at barriers
};

// End-of-window contents of every register slice one query branch
// allocated, after folding the per-worker replicas together.
struct BranchSnapshot {
  std::string query;
  std::size_t branch = 0;
  std::vector<uint32_t> state;  // branch's slices, concatenated in layout order

  friend bool operator==(const BranchSnapshot&, const BranchSnapshot&) =
      default;
};

struct WindowSnapshot {
  uint64_t window = 0;      // ts_ns / window_ns index of the closed window
  std::size_t reports = 0;  // reports drained at this barrier
  std::vector<BranchSnapshot> branches;
};

class ShardedRuntime {
 public:
  // `analyzer` (optional) receives every drained report and gets qid
  // registrations for queries installed through the runtime.
  explicit ShardedRuntime(NewtonSwitch& primary, RuntimeOptions opts = {},
                          Analyzer* analyzer = nullptr);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // Additional raw-record sink (tests use a ReportBuffer); reports go to
  // both this and the analyzer.
  void set_report_sink(ReportSink* sink) { extra_sink_ = sink; }

  // Install / withdraw a query.  Before the stream starts this applies
  // immediately; mid-stream it queues and applies at the next window
  // barrier, where every worker is quiesced (rule updates never observe a
  // half-processed window).  Queued installs pass admission control when
  // applied: a rejected install never throws out of the barrier — it is
  // counted, recorded in rejections(), and provably leaves the pipeline
  // untouched.  Withdrawing a name that is not installed at apply time
  // (e.g. its install was rejected in the same batch) is a counted no-op.
  void install(const Query& q, CompileOptions opts = {},
               const std::string& tenant = kDefaultTenant);
  void withdraw(const std::string& name);

  // One admission-rejected queued install.
  struct RejectedInstall {
    std::string query;
    std::string tenant;
    AdmitDecision decision;
    uint64_t window = 0;  // epoch of the barrier that rejected it
  };
  const std::vector<RejectedInstall>& rejections() const {
    return rejections_;
  }

  // Direct controller access (reads are always safe; mutation while a
  // window is open throws via the quiesce guard).
  Controller& controller() { return controller_; }

  void start();                      // clone replicas, spawn workers
  void process(const Packet& pkt);   // demux one packet (caller = one thread)
  void run(const Trace& t);          // convenience replay loop
  void finish();                     // final barrier, stop and join workers

  const RuntimeStats& stats() const { return stats_; }
  const std::vector<WindowSnapshot>& snapshots() const { return snapshots_; }
  std::size_t num_shards() const { return workers_.size(); }
  std::size_t live_shards() const { return live_count_; }

  // Whether chain compilation is on for this runtime (RuntimeOptions::jit
  // minus the NEWTON_NO_JIT override).
  bool jit_enabled() const { return opts_.jit; }
  // Per-query compiled/interpreted coverage of the current replicas, read
  // from the first live worker (all workers load identical replicas).
  // Valid between start()/barriers; empty when jit is off.
  std::vector<compile::QueryCoverage> jit_coverage() const;

  // Fault-injection seams: make shard `i` crash (close its ring and exit
  // without acking — detected at the demux's next push to it) or hang
  // (stop consuming with a frozen heartbeat — detected by the watchdog
  // deadline) at exactly this point in its item stream.
  void kill_shard_for_test(std::size_t i);
  void stall_shard_for_test(std::size_t i);

 private:
  void barrier();           // fence all workers, merge, drain, mutate, reset
  void drain_and_merge();   // reports -> sinks, banks -> primary, snapshot
  void apply_mutations();   // queued installs/withdrawals, under quiesce
  // Re-clone the primary pipeline into every worker.  build_jit = false
  // defers chain lowering (workers fall back to the interpreter) so
  // back-to-back reloads coalesce into one rebuild later — see
  // maybe_relower().
  void reload_replicas(bool build_jit = true);
  // Debounced chain-JIT rebuild: called at mutation-free barriers; lowers
  // the current replicas once the storm has been quiet long enough.
  void maybe_relower(bool mutated_this_barrier);
  // Mirror per-query compiled/interpreted coverage into the registry's
  // newton_jit_query_compiled gauge (cold path: after replica reloads).
  void publish_jit_coverage();
  void deliver(const ReportRecord& r);
  void bind_telemetry();    // resolve metric handles against the registry
  void flush_telemetry();   // mirror counters batched at each barrier
  // Push one packet to the worker owning `bucket`, failing over dead or
  // hung workers until the push lands.
  void route_packet(std::size_t bucket, const Packet& pkt);
  // Bulk-push everything staged for `bucket` into its current owner's ring
  // (single index handshake per burst), failing over dead/hung owners.
  void flush_bucket(std::size_t bucket);
  void flush_staging();  // all buckets, in bucket order (window barriers)
  // Retire worker `wi`: remap its buckets to a surviving shard and (when
  // the thread exited and left its replica intact) merge its window-partial
  // state into that successor, deliver its pending reports, and re-push its
  // ring backlog so the open window stays complete.
  void failover(std::size_t wi);

  struct PendingMutation {
    enum class Kind : uint8_t { Install, Withdraw } kind;
    Query q;             // Install
    CompileOptions opts; // Install
    std::string name;    // Withdraw
    std::string tenant;  // Install
  };

  NewtonSwitch& primary_;
  RuntimeOptions opts_;
  Controller controller_;
  Analyzer* analyzer_;
  ReportSink* extra_sink_ = nullptr;

  std::vector<std::unique_ptr<ShardWorker>> workers_;
  // Per-bucket staging: packets accumulate here until a burst is full (or
  // a window barrier flushes), then move into the owner's ring with one
  // bulk push.  Preallocated to the burst size — the demux hot path never
  // allocates.
  std::vector<std::vector<WorkItem>> staging_;
  std::vector<PendingMutation> pending_;
  std::vector<RejectedInstall> rejections_;
  // qid -> (query name, branch), for snapshot attribution.
  std::map<uint16_t, std::pair<std::string, std::size_t>> qid_owner_;

  RuntimeStats stats_;
  std::vector<WindowSnapshot> snapshots_;

  // Telemetry handles (see docs/telemetry.md for the metric names).  The
  // packet hot path only touches plain stats_ members; deltas are mirrored
  // into these at window barriers, so instrumentation adds nothing per
  // packet on the demux side.
  struct Metrics {
    telemetry::Counter* packets_in = nullptr;
    telemetry::Counter* windows = nullptr;
    telemetry::Counter* ring_stalls = nullptr;
    telemetry::Counter* rule_updates = nullptr;
    telemetry::Counter* reports = nullptr;
    telemetry::Histogram* merge_us = nullptr;  // window merge duration
    telemetry::Counter* failovers = nullptr;
    telemetry::Counter* redistributed = nullptr;
    telemetry::Counter* abandoned = nullptr;
    telemetry::Gauge* live_shards = nullptr;
    telemetry::Counter* jit_packets = nullptr;        // compiled-path packets
    telemetry::Counter* jit_fused_packets = nullptr;  // fused-shape subset
    telemetry::Counter* jit_hash_lanes = nullptr;     // batched digest lanes
    telemetry::Counter* jit_hash_cse = nullptr;       // lanes saved by CSE
    telemetry::Counter* jit_prefetch = nullptr;       // prefetch hints issued
    telemetry::Counter* installs_rejected = nullptr;
    telemetry::Counter* jit_recompiles = nullptr;
    std::vector<telemetry::Counter*> shard_packets;
    std::vector<telemetry::Gauge*> shard_occupancy;  // ring depth at barrier
  };
  Metrics metrics_;
  RuntimeStats flushed_;  // totals already mirrored into the registry

  // Failover state: flow-key hashes address a fixed set of num_shards
  // buckets; shard_map_ redirects each bucket to its current owner, so a
  // dead worker's whole key range moves to ONE successor (merging its
  // Add/Or state into a single replica keeps counts exact and distinct
  // suppression intact — splitting the range would double-count).
  std::vector<std::size_t> shard_map_;   // bucket -> live worker index
  std::vector<char> alive_;              // per worker
  std::vector<uint64_t> fences_posted_;  // fences enqueued per worker
  std::size_t live_count_ = 0;

  uint64_t cur_epoch_ = 0;
  bool have_epoch_ = false;
  bool started_ = false;
  bool at_barrier_ = false;   // quiesce guard: controller mutation allowed
  bool replicas_dirty_ = true;
  // Chain-JIT debounce state: replicas were reloaded with lowering deferred
  // (workers interpret), and how many consecutive mutation-free barriers
  // have passed since.
  bool jit_stale_ = false;
  std::size_t quiet_barriers_ = 0;
};

}  // namespace newton
