// One shard worker of the sharded runtime: a thread owning a private deep
// clone of the primary switch's newton_init table and pipeline (tables +
// register banks) plus a private report buffer.
//
// Ownership / synchronization contract:
//   * Only the worker thread touches the replica while packets are in
//     flight.
//   * The demux thread may read or rebuild the replica (merge banks, drain
//     reports, reload after a rule update) ONLY between observing a fence
//     acknowledgement and pushing the next queue item; the ring's
//     release/acquire pairs order those accesses (see spsc_ring.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "compile/executor.h"
#include "core/modules.h"
#include "core/report.h"
#include "dataplane/pipeline.h"
#include "runtime/spsc_ring.h"

namespace newton {

// Per-shard execution totals, refreshed at window barriers (and exported
// through telemetry as the newton_runtime_shard_* series).
struct WorkerStats {
  uint64_t packets = 0;   // packets this worker executed
  uint64_t reports = 0;   // reports it emitted (drained at barriers)
  uint64_t busy_ns = 0;   // thread CPU time consumed so far
  // Of `packets`, how many ran through compiled chain executors
  // (src/compile/) rather than the interpreter, and of those how many took
  // a fused shape (the rest took the generic compiled op loop).
  uint64_t jit_packets = 0;
  uint64_t jit_fused_packets = 0;
  // Burst-schedule counters mirrored from the compiled executors' ExecStats
  // (compile/executor.h) at window fences: runs that took the three-phase
  // schedule, digest lanes batch-hashed / saved by hash-CSE, and state-bank
  // prefetch hints issued.
  uint64_t jit_planned_runs = 0;
  uint64_t jit_hash_lanes = 0;
  uint64_t jit_hash_cse_lanes = 0;
  uint64_t jit_prefetch_issued = 0;
};

// One demux->worker queue item: a packet, a window fence, a stop token, or
// a fault-injection poison (Kill: the thread closes its ring and exits
// without acking anything further — a simulated crash at a deterministic
// point in the item stream; Stall: the thread stops consuming and freezes
// its heartbeat until released — a simulated hang).
struct WorkItem {
  enum class Kind : uint8_t { Packet, Fence, Stop, Kill, Stall };
  Kind kind = Kind::Packet;
  Packet pkt;
};

class ShardWorker {
 public:
  // `burst` is the drain batch size: the worker pulls up to this many ring
  // items per handshake and executes packet runs through the pipeline
  // stage-major (Pipeline::process_burst).  1 reproduces the item-at-a-time
  // path exactly.
  ShardWorker(std::size_t index, std::size_t queue_capacity,
              std::size_t burst = 64);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  // Replace the replica with a fresh deep clone of `pipe` + `init`, bind
  // the cloned R modules to this worker's private report buffer, and lower
  // the installed chains into compiled executors (unless jit was turned
  // off).  `build_jit` = false defers the lowering — the replica runs the
  // interpreter until relower_chains() — so the runtime can coalesce
  // recompiles across back-to-back rule updates (a stale CompiledPipeline
  // must NEVER survive a reload: its ops hold pointers into the replaced
  // replica's modules).  Demux thread only; worker must be quiesced (not
  // yet started, or fenced).
  void load_replica(const Pipeline& pipe, const InitModule& init,
                    bool build_jit = true);

  // Lower the current replica's chains into compiled executors (the
  // deferred half of load_replica(..., false)).  Demux thread, quiesced.
  void relower_chains();

  // Executor options for subsequent replica loads: chain compilation
  // on/off (RuntimeOptions::jit / NEWTON_NO_JIT), hash-CSE, prefetch
  // distance (RuntimeOptions::prefetch_distance / NEWTON_NO_PREFETCH).
  void set_exec_options(const compile::ExecOptions& opts) {
    exec_opts_ = opts;
  }

  // Compiled-chain coverage of the current replica (demux thread, worker
  // quiesced) — feeds the runtime's per-query compiled/interpreted gauge.
  const compile::CompiledPipeline& jit() const { return jit_; }

  void start();  // spawn the thread (idempotent)
  void join();   // wait for the thread after a Stop token

  SpscRing<WorkItem>& ring() { return ring_; }

  // Enqueue one item.  `ok = false` means the ring is closed — the worker
  // died (crashed or was failed over); nothing was enqueued.
  SpscRing<WorkItem>::PushResult post(const WorkItem& item) {
    return ring_.push(item);
  }

  // Block (spin+yield) until the worker acknowledged `seq` fences total.
  // Returns false if the worker died (ring closed without the ack) or made
  // no progress — heartbeat frozen with the fence outstanding — for
  // `stall_ms` milliseconds; stall_ms = 0 disables the progress deadline.
  bool wait_fence_for(uint64_t seq, uint64_t stall_ms) const;

  // Items processed since start (packets + fences): the watchdog's
  // liveness signal.  A healthy-but-slow worker keeps advancing it; a dead
  // or hung one freezes.
  uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_acquire);
  }
  // The worker closed its ring (crashed, failed over, or was stalled out).
  bool dead() const { return ring_.closed(); }

  // --- quiesced access (demux thread, after wait_fence) ---
  ReportBuffer& reports() { return reports_; }
  RegisterArray& bank(std::size_t stage);
  bool has_bank(std::size_t stage) const;
  void reset_banks();  // zero every replica register bank (window rollover)
  // Fold the replica's packet/stage/rule-hit deltas into the global
  // registry (the runtime calls this at every window barrier).
  void publish_telemetry() {
    pipeline_.publish_telemetry();
    if (init_) init_->publish_telemetry();
  }
  const WorkerStats& stats() const { return stats_; }

  std::size_t index() const { return index_; }

 private:
  void run();
  void process_batch(const WorkItem* items, std::size_t n);
  void sync_jit_stats();  // mirror ExecStats into stats_ (fence/exit path)

  std::size_t index_;
  std::size_t burst_;
  SpscRing<WorkItem> ring_;
  Pipeline pipeline_{0};
  compile::CompiledPipeline jit_;
  compile::ExecOptions exec_opts_;
  std::shared_ptr<InitModule> init_;
  std::vector<SModule*> s_by_stage_;  // typed views into the replica
  std::vector<RModule*> r_mods_;
  // Reusable drain/execute buffers, sized to burst_ once at start: the
  // steady-state loop allocates nothing (docs/runtime.md "Hot path").
  std::vector<WorkItem> batch_;
  std::vector<Phv> phvs_;
  ReportBuffer reports_;
  WorkerStats stats_;
  std::atomic<uint64_t> fences_seen_{0};
  std::atomic<uint64_t> heartbeat_{0};
  std::atomic<bool> stall_release_{false};  // lets a Stall'd thread exit
  std::thread thread_;
  bool started_ = false;
};

}  // namespace newton
