// Throughput / backpressure / drop counters exposed by the sharded runtime.
#pragma once

#include <cstdint>
#include <vector>

namespace newton {

struct WorkerStats {
  uint64_t packets = 0;   // packets this worker executed
  uint64_t reports = 0;   // reports it emitted (drained at barriers)
  uint64_t busy_ns = 0;   // thread CPU time consumed so far
};

struct RuntimeStats {
  uint64_t packets_in = 0;            // packets demuxed into the shards
  uint64_t windows = 0;               // window barriers completed
  uint64_t backpressure_stalls = 0;   // failed ring pushes (queue full)
  uint64_t rule_updates_applied = 0;  // quiesced mutations applied
  uint64_t reports = 0;               // reports forwarded to the sink(s)
  std::vector<WorkerStats> workers;   // per shard, refreshed at barriers
};

}  // namespace newton
