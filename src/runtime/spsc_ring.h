// Bounded single-producer / single-consumer ring buffer: the demux->worker
// packet channel of the sharded runtime.
//
// The fast path is lock-free (a release/acquire pair on the two indices —
// the classic cached-index SPSC queue).  When one side would spin for long
// it parks on a condition variable with a short timeout, so the runtime
// stays live and cheap on CPU-starved hosts (CI containers often pin us to
// a single core) without the latency cliffs of pure blocking queues.
//
// The release/acquire pair doubles as the runtime's quiesce fence: any
// plain-memory write the producer performs before push() is visible to the
// consumer after the matching pop(), and vice versa — which is what makes
// it safe for the demux thread to rebuild a worker's pipeline replica
// between a fence acknowledgement and the next push.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace newton {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(const T& v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;  // full
    }
    buf_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;  // empty
    }
    out = buf_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // ---- bulk transfer -------------------------------------------------
  // One acquire/release pair moves a whole burst, so the cross-thread
  // cache-line traffic on the two indices is amortized over the burst
  // instead of paid per item (docs/runtime.md "Hot path").

  // Enqueue up to n items; returns how many fit (0 when full or closed).
  // A partial push publishes a contiguous prefix of v.
  std::size_t try_push_bulk(const T* v, std::size_t n) {
    if (n == 0 || closed_.load(std::memory_order_acquire)) return 0;
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ + 1 - static_cast<std::size_t>(t - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - static_cast<std::size_t>(t - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t m = n < free ? n : free;
    for (std::size_t i = 0; i < m; ++i) buf_[(t + i) & mask_] = v[i];
    tail_.store(t + m, std::memory_order_release);
    return m;
  }

  // Copy up to max queued items into out WITHOUT consuming them; returns
  // the count.  Pair with consume(k), k <= that count, once the items are
  // actually handled.  Consumer thread only.  The peek/consume split lets
  // the shard worker stop a burst at a control item (fence, crash poison)
  // and leave everything behind it in the ring — exactly the items the
  // failover path must be able to salvage.
  std::size_t peek_bulk(T* out, std::size_t max) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return 0;  // empty
    }
    const std::size_t avail = static_cast<std::size_t>(tail_cache_ - h);
    const std::size_t m = max < avail ? max : avail;
    for (std::size_t i = 0; i < m; ++i) out[i] = buf_[(h + i) & mask_];
    return m;
  }

  // Retire n items previously peeked (single release on the head index).
  void consume(std::size_t n) {
    if (n == 0) return;
    head_.store(head_.load(std::memory_order_relaxed) + n,
                std::memory_order_release);
    wake(producer_waiting_);
  }

  // Dequeue up to max items in one handshake; returns the count.
  std::size_t try_pop_bulk(T* out, std::size_t max) {
    const std::size_t n = peek_bulk(out, max);
    consume(n);
    return n;
  }

  // Blocking bulk peek: waits (spin, then park) until at least one item is
  // queued, then copies up to max items out without consuming them.
  std::size_t wait_peek_bulk(T* out, std::size_t max) {
    while (true) {
      for (int i = 0; i < kSpin; ++i) {
        const std::size_t n = peek_bulk(out, max);
        if (n != 0) return n;
        std::this_thread::yield();
      }
      park(consumer_waiting_, [this] { return can_pop(); });
    }
  }

  struct PushResult {
    uint64_t stalls = 0;  // failed attempts before the item fit
    bool ok = true;       // false: the ring is closed, nothing was enqueued
  };

  // Blocking push.  Fails fast (ok = false) if the ring is closed — a
  // consumer that exited must not strand its producer spinning forever.
  // The demux counts `stalls` as backpressure.
  PushResult push(const T& v) { return push_for(v, /*timeout_ms=*/0); }

  // Blocking push with a deadline: additionally gives up (ok = false, ring
  // still open) after `timeout_ms` milliseconds without space, so a caller
  // can check the consumer's health before trying again.  timeout_ms = 0
  // means no deadline.
  PushResult push_for(const T& v, uint64_t timeout_ms) {
    PushResult r;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      if (closed_.load(std::memory_order_acquire)) {
        r.ok = false;
        return r;
      }
      for (int i = 0; i < kSpin; ++i) {
        if (try_push(v)) {
          wake(consumer_waiting_);
          return r;
        }
        ++r.stalls;
        std::this_thread::yield();
      }
      if (timeout_ms != 0 && std::chrono::steady_clock::now() >= deadline) {
        r.ok = false;
        return r;
      }
      park(producer_waiting_,
           [this] { return can_push() || closed(); });
    }
  }

  // Blocking bulk push of the whole batch.  Partial progress is fine (the
  // batch lands as several bursts under backpressure); the call only gives
  // up when the ring closes (ok = false) or when `timeout_ms` milliseconds
  // pass with NO forward progress — a deadline since the last accepted
  // item, not since the call, so a slowly-draining consumer never trips it.
  // `*pushed` always reports how many leading items were enqueued.
  PushResult push_bulk_for(const T* v, std::size_t n, uint64_t timeout_ms,
                           std::size_t* pushed) {
    PushResult r;
    std::size_t done = 0;
    auto last_progress = std::chrono::steady_clock::now();
    while (done < n) {
      if (closed_.load(std::memory_order_acquire)) {
        r.ok = false;
        break;
      }
      std::size_t m = 0;
      for (int i = 0; i < kSpin; ++i) {
        m = try_push_bulk(v + done, n - done);
        if (m != 0) break;
        ++r.stalls;
        std::this_thread::yield();
      }
      if (m != 0) {
        done += m;
        wake(consumer_waiting_);
        if (timeout_ms != 0) last_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (timeout_ms != 0 &&
          std::chrono::steady_clock::now() - last_progress >=
              std::chrono::milliseconds(timeout_ms)) {
        r.ok = false;
        break;
      }
      park(producer_waiting_, [this] { return can_push() || closed(); });
    }
    if (pushed != nullptr) *pushed = done;
    return r;
  }

  // Blocking pop.
  void pop(T& out) {
    while (true) {
      for (int i = 0; i < kSpin; ++i) {
        if (try_pop(out)) {
          wake(producer_waiting_);
          return;
        }
        std::this_thread::yield();
      }
      park(consumer_waiting_, [this] { return can_pop(); });
    }
  }

  // Shut the ring: subsequent pushes fail fast; items already enqueued can
  // still be drained with try_pop.  Either side may close (the runtime's
  // workers close on death so the demux detects them at the next push);
  // parked producers are woken promptly.
  void close() {
    {
      // Holding mu_ orders the store against a parked producer's re-check
      // (same protocol as wake()).
      std::lock_guard<std::mutex> lk(mu_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    cv_.notify_all();
  }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t capacity() const { return mask_ + 1; }

  // Items currently enqueued, racy by nature (indices are read separately).
  // Telemetry samples this at window barriers as the shard-occupancy gauge.
  std::size_t size_approx() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    const uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  // Test seam: invoked at the top of park(), i.e. exactly in the window
  // between the caller's last failed try_pop/try_push and the waiting-flag
  // publication.  Lets a regression test inject a push into that window
  // deterministically (tests/test_runtime.cpp ParkRecheck).
  void set_park_test_hook(std::function<void()> hook) {
    park_test_hook_ = std::move(hook);
  }

 private:
  bool can_pop() const {
    return head_.load(std::memory_order_relaxed) !=
           tail_.load(std::memory_order_acquire);
  }
  bool can_push() const {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) <=
           mask_;
  }

  // Publish the waiting flag, THEN re-check the ring before sleeping: an
  // item pushed between the caller's last failed attempt and the flag store
  // would otherwise always eat the full timeout (its wake() read the flag
  // as false).  The flag store is seq_cst so it cannot reorder past the
  // re-check; the wake side reads it seq_cst after its release-store of the
  // index.  A residual miss on weakly-ordered hardware is still bounded by
  // the park timeout, so no eventcount sequencing is needed.
  template <typename Ready>
  void park(std::atomic<bool>& flag, Ready ready) {
    if (park_test_hook_) park_test_hook_();
    std::unique_lock<std::mutex> lk(mu_);
    flag.store(true, std::memory_order_seq_cst);
    if (ready()) {
      flag.store(false, std::memory_order_relaxed);
      return;
    }
    // Holding mu_ from before the flag store to the wait means any wake()
    // that saw the flag blocks on mu_ until wait_for releases it — its
    // notify cannot slip into the gap.
    cv_.wait_for(lk, std::chrono::milliseconds(1));
    flag.store(false, std::memory_order_relaxed);
  }

  void wake(std::atomic<bool>& flag) {
    if (flag.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }

  static constexpr int kSpin = 64;

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer index
  uint64_t tail_cache_ = 0;                    // consumer-private
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer index
  uint64_t head_cache_ = 0;                    // producer-private
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::function<void()> park_test_hook_;  // cold path only; see setter
};

}  // namespace newton
