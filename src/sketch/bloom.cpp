#include "sketch/bloom.h"

#include <cmath>
#include <stdexcept>

namespace newton {

BloomFilter::BloomFilter(std::size_t num_hashes, std::size_t num_bits,
                         uint32_t seed) {
  if (num_hashes == 0 || num_bits == 0)
    throw std::invalid_argument("BloomFilter: hashes and bits must be > 0");
  seeds_.reserve(num_hashes);
  for (std::size_t i = 0; i < num_hashes; ++i)
    seeds_.push_back(seed + static_cast<uint32_t>(i) * 0xc2b2ae35u);
  bits_.assign(num_bits, false);
}

bool BloomFilter::insert(std::span<const uint32_t> key) {
  bool all_set = true;
  for (uint32_t s : seeds_) {
    const std::size_t i = hash_words(HashAlgo::Crc32, s, key) % bits_.size();
    if (!bits_[i]) {
      all_set = false;
      bits_[i] = true;
    }
  }
  return all_set;
}

bool BloomFilter::contains(std::span<const uint32_t> key) const {
  for (uint32_t s : seeds_) {
    const std::size_t i = hash_words(HashAlgo::Crc32, s, key) % bits_.size();
    if (!bits_[i]) return false;
  }
  return true;
}

void BloomFilter::clear() { bits_.assign(bits_.size(), false); }

std::size_t BloomFilter::popcount() const {
  std::size_t n = 0;
  for (bool b : bits_) n += b;
  return n;
}

double BloomFilter::expected_fpr(std::size_t n) const {
  const double k = static_cast<double>(seeds_.size());
  const double m = static_cast<double>(bits_.size());
  return std::pow(1.0 - std::exp(-k * static_cast<double>(n) / m), k);
}

}  // namespace newton
