// Count-Min sketch (Cormode & Muthukrishnan) — the reference implementation
// of the `reduce(f=sum)` primitive's data structure.  The data-plane state
// bank realizes the same structure with register arrays + `add` SALUs; this
// class is used for ground truth comparisons and by the sketch-export
// baselines (Scream).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sketch/hash.h"

namespace newton {

class CountMin {
 public:
  // depth = number of rows (independent hashes), width = counters per row.
  CountMin(std::size_t depth, std::size_t width, uint32_t seed = 0x9e3779b9);

  // Add `delta` to the counters of `key`; returns the post-update estimate.
  uint64_t update(std::span<const uint32_t> key, uint64_t delta = 1);
  uint64_t update(uint32_t key, uint64_t delta = 1) {
    return update(std::span<const uint32_t>{&key, 1}, delta);
  }

  // Point query: min over rows (never underestimates).
  uint64_t estimate(std::span<const uint32_t> key) const;
  uint64_t estimate(uint32_t key) const {
    return estimate(std::span<const uint32_t>{&key, 1});
  }

  void clear();

  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }
  // Total counters, i.e. register cost on a data plane.
  std::size_t size() const { return counters_.size(); }

 private:
  std::size_t row_index(std::size_t row, std::span<const uint32_t> key) const;

  std::size_t depth_;
  std::size_t width_;
  std::vector<uint32_t> seeds_;
  std::vector<uint64_t> counters_;  // depth_ * width_, row-major
};

}  // namespace newton
