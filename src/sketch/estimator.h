// Analytical accuracy estimates for the sketch geometries Newton deploys —
// the control plane's tool for sizing sketches (and for explaining what a
// width degradation costs, see core/scheduler.h).
//
// Count-Min (Cormode & Muthukrishnan): with width w and depth d, a point
// query overestimates by at most (e/w)·N with probability ≥ 1 − e^−d,
// where N is the stream mass in the window.  Bloom filter: k hashes over
// m bits holding n items yield FPR ≈ (1 − e^{−kn/m})^k.
#pragma once

#include <cstddef>

namespace newton {

struct CmEstimate {
  double epsilon;  // relative error bound: overcount <= epsilon * mass
  double delta;    // failure probability of that bound
};

// Error profile of a d x w Count-Min sketch.
CmEstimate cm_error(std::size_t width, std::size_t depth);

// Expected (mean) overcount of a point query under uniform collision mass:
// mass / width per row, reduced by taking the min over d rows (approximated
// with the standard d-th order-statistic shrinkage mass/(width) * 1/d ...
// we use the conservative mean of the minimum of d iid exponentials).
double cm_expected_overcount(std::size_t width, std::size_t depth,
                             double window_mass);

// Smallest power-of-two width such that the expected overcount stays under
// `max_overcount` for the given window mass and depth.
std::size_t recommend_cm_width(double window_mass, double max_overcount,
                               std::size_t depth,
                               std::size_t max_width = 1u << 20);

// Bloom-filter false-positive rate for n items in m bits with k hashes.
double bf_fpr(std::size_t bits, std::size_t hashes, double items);

// Smallest power-of-two bit count keeping the FPR under `target` for the
// expected distinct-item count.
std::size_t recommend_bf_bits(double items, double target_fpr,
                              std::size_t hashes,
                              std::size_t max_bits = 1u << 22);

// Probability that a key whose true count sits `margin` below a threshold
// is falsely promoted by CM overcounting (a false positive of a `when >=`
// query), under an exponential tail approximation of the collision mass.
double cm_false_promotion_probability(std::size_t width, std::size_t depth,
                                      double window_mass, double margin);

}  // namespace newton
