#include "sketch/count_min.h"

#include <stdexcept>

namespace newton {

CountMin::CountMin(std::size_t depth, std::size_t width, uint32_t seed)
    : depth_(depth), width_(width) {
  if (depth == 0 || width == 0)
    throw std::invalid_argument("CountMin: depth and width must be > 0");
  seeds_.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i)
    seeds_.push_back(seed + static_cast<uint32_t>(i) * 0x85ebca6bu);
  counters_.assign(depth * width, 0);
}

std::size_t CountMin::row_index(std::size_t row,
                                std::span<const uint32_t> key) const {
  return hash_words(HashAlgo::Crc32c, seeds_[row], key) % width_;
}

uint64_t CountMin::update(std::span<const uint32_t> key, uint64_t delta) {
  uint64_t est = UINT64_MAX;
  for (std::size_t r = 0; r < depth_; ++r) {
    uint64_t& c = counters_[r * width_ + row_index(r, key)];
    c += delta;
    est = std::min(est, c);
  }
  return est;
}

uint64_t CountMin::estimate(std::span<const uint32_t> key) const {
  uint64_t est = UINT64_MAX;
  for (std::size_t r = 0; r < depth_; ++r)
    est = std::min(est, counters_[r * width_ + row_index(r, key)]);
  return est;
}

void CountMin::clear() { std::fill(counters_.begin(), counters_.end(), 0); }

}  // namespace newton
