// Bloom filter — the reference implementation of the `distinct` primitive's
// data structure (§4.1: "using Bloom Filter for distinct").  The data-plane
// state bank realizes it with register arrays + `or` SALUs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/hash.h"

namespace newton {

class BloomFilter {
 public:
  // k hash functions over m bits.
  BloomFilter(std::size_t num_hashes, std::size_t num_bits,
              uint32_t seed = 0x2545f491);

  // Insert a key; returns true if the key was *possibly already present*
  // (i.e. every probed bit was already set) — exactly the semantics the
  // distinct primitive needs: "first occurrence" <=> insert() == false.
  bool insert(std::span<const uint32_t> key);
  bool insert(uint32_t key) {
    return insert(std::span<const uint32_t>{&key, 1});
  }

  bool contains(std::span<const uint32_t> key) const;
  bool contains(uint32_t key) const {
    return contains(std::span<const uint32_t>{&key, 1});
  }

  void clear();

  std::size_t num_hashes() const { return seeds_.size(); }
  std::size_t num_bits() const { return bits_.size(); }
  std::size_t popcount() const;

  // Theoretical false-positive rate after n insertions.
  double expected_fpr(std::size_t n) const;

 private:
  std::vector<uint32_t> seeds_;
  std::vector<bool> bits_;
};

}  // namespace newton
