// Hash family used by the hash-calculation module (H), the sketches, and
// ECMP path selection.  Programmable switches expose a small set of CRC
// polynomials plus per-instance seeds; we model that as a seeded family of
// deterministic 32-bit hashes.
#pragma once

#include <cstdint>
#include <span>

namespace newton {

enum class HashAlgo : uint8_t {
  Crc32,     // table-driven CRC-32 (IEEE polynomial)
  Crc32c,    // CRC-32C (Castagnoli polynomial)
  Mix64,     // SplitMix64-style finalizer; models a generic hardware hash
  Identity,  // "direct" mode of H: pass the key value through
};

// Hash `data` with the given algorithm and seed.  Identity returns the first
// up-to-4 bytes interpreted little-endian (the direct mode of H operates on
// a single selected field).
uint32_t hash_bytes(HashAlgo algo, uint32_t seed,
                    std::span<const uint8_t> data);

// Hash a single 32-bit word (common case: one operation key).
uint32_t hash_u32(HashAlgo algo, uint32_t seed, uint32_t value);

// Hash a span of 32-bit words (multi-field operation keys).
uint32_t hash_words(HashAlgo algo, uint32_t seed,
                    std::span<const uint32_t> words);

// Multi-lane batched hashing (the compiled executors' hash phase).  For
// each lane l in [0, lanes) computes
//
//     out[l] = hash_words(algo, seed, masked(base + l*stride_words))
//
// where masked(p) is the nwords-long key {p[0] & masks[0], ...}; masks ==
// nullptr hashes the words unmasked.  Bit-identical to calling hash_words
// on each lane's masked key.  `stride_words` lets the lanes live either in
// contiguous SoA key rows (stride == nwords) or strided inside an array of
// larger records (e.g. PHV packet fields).  The CRC paths interleave four
// independent lanes so the per-word table-lookup chains overlap in the
// load ports instead of serializing — single-lane CRC is latency-bound,
// not throughput-bound.
void hash_words_lanes(HashAlgo algo, uint32_t seed, const uint32_t* base,
                      std::size_t nwords, std::size_t stride_words,
                      std::size_t lanes, const uint32_t* masks,
                      uint32_t* out);

}  // namespace newton
