#include "sketch/estimator.h"

#include <cmath>

namespace newton {

CmEstimate cm_error(std::size_t width, std::size_t depth) {
  CmEstimate e;
  e.epsilon = width == 0 ? 1.0 : M_E / static_cast<double>(width);
  e.delta = std::exp(-static_cast<double>(depth));
  return e;
}

double cm_expected_overcount(std::size_t width, std::size_t depth,
                             double window_mass) {
  if (width == 0) return window_mass;
  // Per-row collision mass ~ Exponential with mean mass/width (heavy-tailed
  // streams concentrate mass in few counters; the exponential is a standard
  // conservative surrogate).  The minimum of d iid exponentials has mean
  // (mass/width)/d.
  const double per_row = window_mass / static_cast<double>(width);
  return per_row / static_cast<double>(depth == 0 ? 1 : depth);
}

std::size_t recommend_cm_width(double window_mass, double max_overcount,
                               std::size_t depth, std::size_t max_width) {
  if (max_overcount <= 0) return max_width;
  std::size_t w = 64;
  while (w < max_width &&
         cm_expected_overcount(w, depth, window_mass) > max_overcount)
    w <<= 1;
  return w;
}

double bf_fpr(std::size_t bits, std::size_t hashes, double items) {
  if (bits == 0) return 1.0;
  const double k = static_cast<double>(hashes);
  const double m = static_cast<double>(bits);
  return std::pow(1.0 - std::exp(-k * items / m), k);
}

std::size_t recommend_bf_bits(double items, double target_fpr,
                              std::size_t hashes, std::size_t max_bits) {
  if (target_fpr <= 0) return max_bits;
  std::size_t m = 64;
  while (m < max_bits && bf_fpr(m, hashes, items) > target_fpr) m <<= 1;
  return m;
}

double cm_false_promotion_probability(std::size_t width, std::size_t depth,
                                      double window_mass, double margin) {
  if (width == 0) return 1.0;
  if (margin <= 0) return 1.0;
  // P[min of d iid Exp(mean mu) >= margin] = exp(-d * margin / mu).
  const double mu = window_mass / static_cast<double>(width);
  if (mu <= 0) return 0.0;
  return std::exp(-static_cast<double>(depth) * margin / mu);
}

}  // namespace newton
