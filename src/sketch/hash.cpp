#include "sketch/hash.h"

#include <array>

namespace newton {
namespace {

template <uint32_t Poly>
constexpr std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (Poly ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc_table<0xEDB88320u>();
constexpr auto kCrc32cTable = make_crc_table<0x82F63B78u>();

// Slicing-by-4 companion tables: T[0] is the byte table above, and
// T[k][i] advances T[k-1][i] by one zero byte, so a whole 32-bit word is
// absorbed with four independent lookups instead of four chained
// byte steps.  Bit-identical to the byte-at-a-time loop.
template <uint32_t Poly>
constexpr std::array<std::array<uint32_t, 256>, 4> make_crc_slices() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  t[0] = make_crc_table<Poly>();
  for (std::size_t k = 1; k < 4; ++k)
    for (uint32_t i = 0; i < 256; ++i)
      t[k][i] = t[0][t[k - 1][i] & 0xff] ^ (t[k - 1][i] >> 8);
  return t;
}

constexpr auto kCrc32Slices = make_crc_slices<0xEDB88320u>();
constexpr auto kCrc32cSlices = make_crc_slices<0x82F63B78u>();

uint32_t crc(const std::array<uint32_t, 256>& table, uint32_t seed,
             std::span<const uint8_t> data) {
  uint32_t c = ~seed;
  for (uint8_t b : data) c = table[(c ^ b) & 0xff] ^ (c >> 8);
  return ~c;
}

// CRC of one little-endian 32-bit word: equals crc(table, seed, 4 LE bytes).
inline uint32_t crc_word(const std::array<std::array<uint32_t, 256>, 4>& t,
                         uint32_t seed, uint32_t word) {
  const uint32_t x = ~seed ^ word;
  return ~(t[3][x & 0xff] ^ t[2][(x >> 8) & 0xff] ^ t[1][(x >> 16) & 0xff] ^
           t[0][x >> 24]);
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

uint32_t hash_bytes(HashAlgo algo, uint32_t seed,
                    std::span<const uint8_t> data) {
  switch (algo) {
    case HashAlgo::Crc32:
      return crc(kCrc32Table, seed, data);
    case HashAlgo::Crc32c:
      return crc(kCrc32cTable, seed, data);
    case HashAlgo::Mix64: {
      uint64_t h = seed;
      for (uint8_t b : data) h = splitmix64(h ^ b);
      return static_cast<uint32_t>(h ^ (h >> 32));
    }
    case HashAlgo::Identity: {
      uint32_t v = 0;
      const std::size_t n = data.size() < 4 ? data.size() : 4;
      for (std::size_t i = 0; i < n; ++i) v |= uint32_t{data[i]} << (8 * i);
      return v;
    }
  }
  return 0;
}

uint32_t hash_u32(HashAlgo algo, uint32_t seed, uint32_t value) {
  switch (algo) {
    case HashAlgo::Identity:
      return value;
    case HashAlgo::Crc32:
      return crc_word(kCrc32Slices, seed, value);
    case HashAlgo::Crc32c:
      return crc_word(kCrc32cSlices, seed, value);
    case HashAlgo::Mix64:
      break;
  }
  std::array<uint8_t, 4> bytes{
      static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
      static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  return hash_bytes(algo, seed, bytes);
}

uint32_t hash_words(HashAlgo algo, uint32_t seed,
                    std::span<const uint32_t> words) {
  if (algo == HashAlgo::Identity)
    return words.empty() ? 0 : words.front();
  uint32_t h = seed;
  switch (algo) {
    case HashAlgo::Crc32:
      for (uint32_t w : words) h = crc_word(kCrc32Slices, h ^ 0x5bd1e995u, w);
      break;
    case HashAlgo::Crc32c:
      for (uint32_t w : words)
        h = crc_word(kCrc32cSlices, h ^ 0x5bd1e995u, w);
      break;
    default:
      for (uint32_t w : words) h = hash_u32(algo, h ^ 0x5bd1e995u, w);
      break;
  }
  // CRC is affine over GF(2): two seeds yield XOR-shifted copies of the
  // same function, which would make sketch rows perfectly correlated (the
  // min over rows degenerates to one row).  Hardware uses a DIFFERENT
  // polynomial per row; we model that with a seed-keyed multiplicative
  // finalizer, which breaks the affinity.
  uint64_t x = (uint64_t{h} << 32) ^ (seed * 0x9E3779B9ull + 0x7F4A7C15ull);
  x = splitmix64(x);
  return static_cast<uint32_t>(x ^ (x >> 32));
}

}  // namespace newton
