#include "sketch/hash.h"

#include <algorithm>
#include <array>

namespace newton {
namespace {

template <uint32_t Poly>
constexpr std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (Poly ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc_table<0xEDB88320u>();
constexpr auto kCrc32cTable = make_crc_table<0x82F63B78u>();

// Slicing-by-4 companion tables: T[0] is the byte table above, and
// T[k][i] advances T[k-1][i] by one zero byte, so a whole 32-bit word is
// absorbed with four independent lookups instead of four chained
// byte steps.  Bit-identical to the byte-at-a-time loop.
template <uint32_t Poly>
constexpr std::array<std::array<uint32_t, 256>, 4> make_crc_slices() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  t[0] = make_crc_table<Poly>();
  for (std::size_t k = 1; k < 4; ++k)
    for (uint32_t i = 0; i < 256; ++i)
      t[k][i] = t[0][t[k - 1][i] & 0xff] ^ (t[k - 1][i] >> 8);
  return t;
}

constexpr auto kCrc32Slices = make_crc_slices<0xEDB88320u>();
constexpr auto kCrc32cSlices = make_crc_slices<0x82F63B78u>();

uint32_t crc(const std::array<uint32_t, 256>& table, uint32_t seed,
             std::span<const uint8_t> data) {
  uint32_t c = ~seed;
  for (uint8_t b : data) c = table[(c ^ b) & 0xff] ^ (c >> 8);
  return ~c;
}

// CRC of one little-endian 32-bit word: equals crc(table, seed, 4 LE bytes).
inline uint32_t crc_word(const std::array<std::array<uint32_t, 256>, 4>& t,
                         uint32_t seed, uint32_t word) {
  const uint32_t x = ~seed ^ word;
  return ~(t[3][x & 0xff] ^ t[2][(x >> 8) & 0xff] ^ t[1][(x >> 16) & 0xff] ^
           t[0][x >> 24]);
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Seed-keyed multiplicative finalizer shared by hash_words and the
// multi-lane path (see the affinity note in hash_words).
inline uint32_t words_finalize(uint32_t h, uint32_t seed) {
  uint64_t x = (uint64_t{h} << 32) ^ (seed * 0x9E3779B9ull + 0x7F4A7C15ull);
  x = splitmix64(x);
  return static_cast<uint32_t>(x ^ (x >> 32));
}

// Multi-lane CRC word absorption: four independent accumulator chains per
// block, so the four serially-dependent table-lookup chains issue in
// parallel.  Each lane's math is exactly hash_words' per-word chaining.
void crc_words_lanes(const std::array<std::array<uint32_t, 256>, 4>& t,
                     uint32_t seed, const uint32_t* base, std::size_t nwords,
                     std::size_t stride, std::size_t lanes,
                     const uint32_t* masks, uint32_t* out) {
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    const uint32_t* p0 = base + (l + 0) * stride;
    const uint32_t* p1 = base + (l + 1) * stride;
    const uint32_t* p2 = base + (l + 2) * stride;
    const uint32_t* p3 = base + (l + 3) * stride;
    uint32_t h0 = seed, h1 = seed, h2 = seed, h3 = seed;
    for (std::size_t j = 0; j < nwords; ++j) {
      const uint32_t m = masks == nullptr ? 0xffffffffu : masks[j];
      h0 = crc_word(t, h0 ^ 0x5bd1e995u, p0[j] & m);
      h1 = crc_word(t, h1 ^ 0x5bd1e995u, p1[j] & m);
      h2 = crc_word(t, h2 ^ 0x5bd1e995u, p2[j] & m);
      h3 = crc_word(t, h3 ^ 0x5bd1e995u, p3[j] & m);
    }
    out[l + 0] = words_finalize(h0, seed);
    out[l + 1] = words_finalize(h1, seed);
    out[l + 2] = words_finalize(h2, seed);
    out[l + 3] = words_finalize(h3, seed);
  }
  for (; l < lanes; ++l) {
    const uint32_t* p = base + l * stride;
    uint32_t h = seed;
    for (std::size_t j = 0; j < nwords; ++j) {
      const uint32_t m = masks == nullptr ? 0xffffffffu : masks[j];
      h = crc_word(t, h ^ 0x5bd1e995u, p[j] & m);
    }
    out[l] = words_finalize(h, seed);
  }
}

}  // namespace

uint32_t hash_bytes(HashAlgo algo, uint32_t seed,
                    std::span<const uint8_t> data) {
  switch (algo) {
    case HashAlgo::Crc32:
      return crc(kCrc32Table, seed, data);
    case HashAlgo::Crc32c:
      return crc(kCrc32cTable, seed, data);
    case HashAlgo::Mix64: {
      uint64_t h = seed;
      for (uint8_t b : data) h = splitmix64(h ^ b);
      return static_cast<uint32_t>(h ^ (h >> 32));
    }
    case HashAlgo::Identity: {
      uint32_t v = 0;
      const std::size_t n = data.size() < 4 ? data.size() : 4;
      for (std::size_t i = 0; i < n; ++i) v |= uint32_t{data[i]} << (8 * i);
      return v;
    }
  }
  return 0;
}

uint32_t hash_u32(HashAlgo algo, uint32_t seed, uint32_t value) {
  switch (algo) {
    case HashAlgo::Identity:
      return value;
    case HashAlgo::Crc32:
      return crc_word(kCrc32Slices, seed, value);
    case HashAlgo::Crc32c:
      return crc_word(kCrc32cSlices, seed, value);
    case HashAlgo::Mix64:
      break;
  }
  std::array<uint8_t, 4> bytes{
      static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
      static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  return hash_bytes(algo, seed, bytes);
}

uint32_t hash_words(HashAlgo algo, uint32_t seed,
                    std::span<const uint32_t> words) {
  if (algo == HashAlgo::Identity)
    return words.empty() ? 0 : words.front();
  uint32_t h = seed;
  switch (algo) {
    case HashAlgo::Crc32:
      for (uint32_t w : words) h = crc_word(kCrc32Slices, h ^ 0x5bd1e995u, w);
      break;
    case HashAlgo::Crc32c:
      for (uint32_t w : words)
        h = crc_word(kCrc32cSlices, h ^ 0x5bd1e995u, w);
      break;
    default:
      for (uint32_t w : words) h = hash_u32(algo, h ^ 0x5bd1e995u, w);
      break;
  }
  // CRC is affine over GF(2): two seeds yield XOR-shifted copies of the
  // same function, which would make sketch rows perfectly correlated (the
  // min over rows degenerates to one row).  Hardware uses a DIFFERENT
  // polynomial per row; we model that with a seed-keyed multiplicative
  // finalizer, which breaks the affinity.
  return words_finalize(h, seed);
}

void hash_words_lanes(HashAlgo algo, uint32_t seed, const uint32_t* base,
                      std::size_t nwords, std::size_t stride_words,
                      std::size_t lanes, const uint32_t* masks,
                      uint32_t* out) {
  switch (algo) {
    case HashAlgo::Crc32:
      crc_words_lanes(kCrc32Slices, seed, base, nwords, stride_words, lanes,
                      masks, out);
      return;
    case HashAlgo::Crc32c:
      crc_words_lanes(kCrc32cSlices, seed, base, nwords, stride_words, lanes,
                      masks, out);
      return;
    case HashAlgo::Identity:
      for (std::size_t l = 0; l < lanes; ++l)
        out[l] = nwords == 0 ? 0
                             : base[l * stride_words] &
                                   (masks == nullptr ? 0xffffffffu : masks[0]);
      return;
    case HashAlgo::Mix64:
      break;
  }
  // Mix64 keys per-byte state through splitmix64 — no profitable lane
  // interleave; delegate to the scalar path on a masked stack copy.  Keys
  // are operation-key spans (kNumFields words), far under the buffer.
  std::array<uint32_t, 64> tmp;
  const std::size_t n = std::min(nwords, tmp.size());
  for (std::size_t l = 0; l < lanes; ++l) {
    const uint32_t* p = base + l * stride_words;
    for (std::size_t j = 0; j < n; ++j)
      tmp[j] = p[j] & (masks == nullptr ? 0xffffffffu : masks[j]);
    out[l] = hash_words(algo, seed, std::span<const uint32_t>(tmp.data(), n));
  }
}

}  // namespace newton
