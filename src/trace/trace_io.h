// Trace persistence: a compact binary format for replaying identical
// workloads across runs/machines, and a CSV form for hand-written or
// externally-converted traces (e.g. reduced pcaps).
//
// Binary layout: magic "NTRC", u32 version, u32 name length + bytes,
// u64 packet count, then per packet: u64 ts_ns, u32 wire_len,
// kNumFields x u32 fields (little-endian).
//
// CSV columns: ts_ns,sip,dip,sport,dport,proto,tcp_flags,pkt_len
// (IPs dotted-quad or raw u32; '#' comments and blank lines ignored).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace_gen.h"

namespace newton {

// Binary round-trip.  Throw std::runtime_error on I/O or format errors.
void save_trace(const Trace& t, const std::string& path);
Trace load_trace(const std::string& path);
void write_trace(const Trace& t, std::ostream& os);
Trace read_trace(std::istream& is);

// CSV import/export.
void save_trace_csv(const Trace& t, const std::string& path);
Trace load_trace_csv(const std::string& path);
std::optional<Packet> parse_csv_line(const std::string& line);

}  // namespace newton
