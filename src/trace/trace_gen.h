// Synthetic trace generation standing in for the CAIDA and MAWI packet
// traces used by the paper's evaluation (see DESIGN.md, substitutions).
//
// A Trace is a time-ordered packet stream as seen at one monitoring point
// (both directions of each connection traverse it).  Background traffic is
// built from Zipf-sized flows with realistic TCP handshake/teardown
// sequences; attack traffic is layered on top by the injectors in
// trace/attacks.h.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "packet/packet.h"

namespace newton {

struct Trace {
  std::string name;
  std::vector<Packet> packets;  // sorted by ts_ns

  std::size_t size() const { return packets.size(); }
  uint64_t duration_ns() const {
    return packets.empty() ? 0 : packets.back().ts_ns - packets.front().ts_ns;
  }
  // Re-sort by timestamp (injectors append out of order).
  void sort_by_time();
};

// Knobs describing a background-traffic profile.
struct TraceProfile {
  std::string name;
  std::size_t num_flows = 20'000;
  double zipf_alpha = 1.1;        // flow-size skew
  std::size_t max_flow_pkts = 2'000;
  double tcp_fraction = 0.85;     // rest is UDP (incl. DNS)
  double dns_fraction = 0.25;     // of UDP flows, fraction to port 53
  double duration_sec = 1.0;
  std::size_t num_hosts = 4'096;  // address pool per side
  uint32_t seed = 1;
};

// Backbone-style profile: TCP-dominated, strongly heavy-tailed.
TraceProfile caida_like(uint32_t seed = 1);
// Transpacific-link-style profile: more UDP/DNS, shorter flows.
TraceProfile mawi_like(uint32_t seed = 2);

// Generate the background trace for a profile (deterministic per seed).
Trace generate_trace(const TraceProfile& profile);

// Emit the bidirectional packet sequence of one TCP connection into `out`.
// `data_pkts` counts payload packets after the handshake; when
// `complete` is false the connection never finishes its handshake (only the
// client SYNs are emitted, `data_pkts` is ignored).
void emit_tcp_connection(std::vector<Packet>& out, uint32_t client,
                         uint32_t server, uint16_t sport, uint16_t dport,
                         std::size_t data_pkts, uint64_t start_ns,
                         uint64_t gap_ns, std::mt19937& rng,
                         bool complete = true);

}  // namespace newton
