#include "trace/attacks.h"

namespace newton {
namespace {

uint32_t spoofed_ip(std::mt19937& rng) {
  // Random source outside the background client pool.
  return ipv4(198, 18, static_cast<uint8_t>(rng() & 0xff),
              static_cast<uint8_t>(rng() & 0xff));
}

uint16_t rand_eph(std::mt19937& rng) {
  return static_cast<uint16_t>(32768 + (rng() % 28000));
}

}  // namespace

InjectInfo inject_syn_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t syns_per_source, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {}, 0};
  uint64_t t = start_ns;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const uint32_t src = spoofed_ip(rng);
    info.attackers.push_back(src);
    for (std::size_t i = 0; i < syns_per_source; ++i) {
      trace.packets.push_back(make_packet(src, victim, rand_eph(rng), 80,
                                          kProtoTcp, kTcpSyn, 64, t));
      t += 5'000;  // 5us — flood rate
      ++info.packets_injected;
    }
  }
  return info;
}

InjectInfo inject_port_scan(Trace& trace, uint32_t scanner, uint32_t victim,
                            std::size_t num_ports, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {scanner}, 0};
  uint64_t t = start_ns;
  for (std::size_t p = 0; p < num_ports; ++p) {
    trace.packets.push_back(make_packet(
        scanner, victim, rand_eph(rng), static_cast<uint16_t>(1 + p),
        kProtoTcp, kTcpSyn, 64, t));
    t += 50'000;
    ++info.packets_injected;
  }
  return info;
}

InjectInfo inject_udp_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t pkts_per_source, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {}, 0};
  uint64_t t = start_ns;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const uint32_t src = spoofed_ip(rng);
    info.attackers.push_back(src);
    for (std::size_t i = 0; i < pkts_per_source; ++i) {
      trace.packets.push_back(make_packet(src, victim, rand_eph(rng), 123,
                                          kProtoUdp, 0, 512, t));
      t += 2'000;
      ++info.packets_injected;
    }
  }
  return info;
}

InjectInfo inject_ssh_brute(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_attempts, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {attacker}, 0};
  uint64_t t = start_ns;
  const std::size_t before = trace.packets.size();
  for (std::size_t i = 0; i < num_attempts; ++i) {
    // Short, uniform-length connections: a failed login exchange.
    emit_tcp_connection(trace.packets, attacker, victim, rand_eph(rng), 22,
                        /*data_pkts=*/3, t, /*gap_ns=*/10'000, rng);
    t += 200'000;
  }
  info.packets_injected = trace.packets.size() - before;
  return info;
}

InjectInfo inject_slowloris(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_conns, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {attacker}, 0};
  uint64_t t = start_ns;
  const std::size_t before = trace.packets.size();
  for (std::size_t i = 0; i < num_conns; ++i) {
    // Handshake + a single tiny payload packet; the connection then idles.
    emit_tcp_connection(trace.packets, attacker, victim, rand_eph(rng), 80,
                        /*data_pkts=*/1, t, /*gap_ns=*/15'000, rng);
    t += 50'000;
  }
  info.packets_injected = trace.packets.size() - before;
  return info;
}

InjectInfo inject_super_spreader(Trace& trace, uint32_t source,
                                 std::size_t num_dsts, uint64_t start_ns,
                                 std::mt19937& rng) {
  InjectInfo info{source, {source}, 0};
  uint64_t t = start_ns;
  for (std::size_t d = 0; d < num_dsts; ++d) {
    const uint32_t dst = ipv4(172, 16, static_cast<uint8_t>(d >> 8),
                              static_cast<uint8_t>(d));
    trace.packets.push_back(make_packet(source, dst, rand_eph(rng), 443,
                                        kProtoTcp, kTcpSyn, 64, t));
    t += 30'000;
    ++info.packets_injected;
  }
  return info;
}

InjectInfo inject_dns_no_tcp(Trace& trace, uint32_t host, uint32_t resolver,
                             std::size_t num_responses, uint64_t start_ns,
                             std::mt19937& rng) {
  InjectInfo info{host, {resolver}, 0};
  uint64_t t = start_ns;
  for (std::size_t i = 0; i < num_responses; ++i) {
    const uint16_t sport = rand_eph(rng);
    // Query out, response back; no TCP connection follows.
    trace.packets.push_back(
        make_packet(host, resolver, sport, 53, kProtoUdp, 0, 80, t));
    trace.packets.push_back(make_packet(resolver, host, 53, sport, kProtoUdp,
                                        0, 220, t + 8'000));
    t += 100'000;
    info.packets_injected += 2;
  }
  return info;
}

}  // namespace newton
