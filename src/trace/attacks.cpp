#include "trace/attacks.h"

namespace newton {
namespace {

uint32_t spoofed_ip(std::mt19937& rng) {
  // Random source outside the background client pool.
  return ipv4(198, 18, static_cast<uint8_t>(rng() & 0xff),
              static_cast<uint8_t>(rng() & 0xff));
}

uint16_t rand_eph(std::mt19937& rng) {
  return static_cast<uint16_t>(32768 + (rng() % 28000));
}

}  // namespace

InjectInfo inject_syn_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t syns_per_source, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {}, 0};
  uint64_t t = start_ns;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const uint32_t src = spoofed_ip(rng);
    info.attackers.push_back(src);
    for (std::size_t i = 0; i < syns_per_source; ++i) {
      trace.packets.push_back(make_packet(src, victim, rand_eph(rng), 80,
                                          kProtoTcp, kTcpSyn, 64, t));
      t += 5'000;  // 5us — flood rate
      ++info.packets_injected;
    }
  }
  return info;
}

InjectInfo inject_port_scan(Trace& trace, uint32_t scanner, uint32_t victim,
                            std::size_t num_ports, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {scanner}, 0};
  uint64_t t = start_ns;
  for (std::size_t p = 0; p < num_ports; ++p) {
    trace.packets.push_back(make_packet(
        scanner, victim, rand_eph(rng), static_cast<uint16_t>(1 + p),
        kProtoTcp, kTcpSyn, 64, t));
    t += 50'000;
    ++info.packets_injected;
  }
  return info;
}

InjectInfo inject_udp_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t pkts_per_source, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {}, 0};
  uint64_t t = start_ns;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const uint32_t src = spoofed_ip(rng);
    info.attackers.push_back(src);
    for (std::size_t i = 0; i < pkts_per_source; ++i) {
      trace.packets.push_back(make_packet(src, victim, rand_eph(rng), 123,
                                          kProtoUdp, 0, 512, t));
      t += 2'000;
      ++info.packets_injected;
    }
  }
  return info;
}

InjectInfo inject_ssh_brute(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_attempts, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {attacker}, 0};
  uint64_t t = start_ns;
  const std::size_t before = trace.packets.size();
  for (std::size_t i = 0; i < num_attempts; ++i) {
    // Short, uniform-length connections: a failed login exchange.
    emit_tcp_connection(trace.packets, attacker, victim, rand_eph(rng), 22,
                        /*data_pkts=*/3, t, /*gap_ns=*/10'000, rng);
    t += 200'000;
  }
  info.packets_injected = trace.packets.size() - before;
  return info;
}

InjectInfo inject_slowloris(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_conns, uint64_t start_ns,
                            std::mt19937& rng) {
  InjectInfo info{victim, {attacker}, 0};
  uint64_t t = start_ns;
  const std::size_t before = trace.packets.size();
  for (std::size_t i = 0; i < num_conns; ++i) {
    // Handshake + a single tiny payload packet; the connection then idles.
    emit_tcp_connection(trace.packets, attacker, victim, rand_eph(rng), 80,
                        /*data_pkts=*/1, t, /*gap_ns=*/15'000, rng);
    t += 50'000;
  }
  info.packets_injected = trace.packets.size() - before;
  return info;
}

InjectInfo inject_super_spreader(Trace& trace, uint32_t source,
                                 std::size_t num_dsts, uint64_t start_ns,
                                 std::mt19937& rng) {
  InjectInfo info{source, {source}, 0};
  uint64_t t = start_ns;
  for (std::size_t d = 0; d < num_dsts; ++d) {
    const uint32_t dst = ipv4(172, 16, static_cast<uint8_t>(d >> 8),
                              static_cast<uint8_t>(d));
    trace.packets.push_back(make_packet(source, dst, rand_eph(rng), 443,
                                        kProtoTcp, kTcpSyn, 64, t));
    t += 30'000;
    ++info.packets_injected;
  }
  return info;
}

InjectInfo inject_dns_no_tcp(Trace& trace, uint32_t host, uint32_t resolver,
                             std::size_t num_responses, uint64_t start_ns,
                             std::mt19937& rng) {
  InjectInfo info{host, {resolver}, 0};
  uint64_t t = start_ns;
  for (std::size_t i = 0; i < num_responses; ++i) {
    const uint16_t sport = rand_eph(rng);
    // Query out, response back; no TCP connection follows.
    trace.packets.push_back(
        make_packet(host, resolver, sport, 53, kProtoUdp, 0, 80, t));
    trace.packets.push_back(make_packet(resolver, host, 53, sport, kProtoUdp,
                                        0, 220, t + 8'000));
    t += 100'000;
    info.packets_injected += 2;
  }
  return info;
}

InjectInfo inject_volume_burst(Trace& trace, uint32_t victim, uint16_t dport,
                               std::size_t num_packets, uint64_t start_ns,
                               uint64_t duration_ns, std::mt19937& rng) {
  InjectInfo info{victim, {}, 0};
  const uint64_t gap =
      num_packets > 1 ? duration_ns / (num_packets - 1) : duration_ns;
  for (std::size_t s = 0; s < 4; ++s) info.attackers.push_back(spoofed_ip(rng));
  uint64_t t = start_ns;
  for (std::size_t i = 0; i < num_packets; ++i) {
    trace.packets.push_back(make_packet(info.attackers[i % 4], victim,
                                        rand_eph(rng), dport, kProtoUdp, 0,
                                        64, t));
    t += gap;
    ++info.packets_injected;
  }
  return info;
}

InjectInfo inject_prefix_flood(Trace& trace, uint32_t prefix24,
                               std::size_t num_sources,
                               std::size_t pkts_per_source, uint32_t victim,
                               uint16_t dport, uint32_t pkt_len,
                               uint64_t start_ns, std::mt19937& rng) {
  InjectInfo info{victim, {prefix24 & 0xffffff00u}, 0};
  uint64_t t = start_ns;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const uint32_t src =
        (prefix24 & 0xffffff00u) | static_cast<uint32_t>(1 + (s % 254));
    for (std::size_t i = 0; i < pkts_per_source; ++i) {
      trace.packets.push_back(make_packet(src, victim, rand_eph(rng), dport,
                                          kProtoUdp, 0, pkt_len, t));
      t += 3'000;
      ++info.packets_injected;
    }
  }
  return info;
}

LabeledAttackTrace make_labeled_attack_trace(uint32_t seed,
                                             std::size_t background_flows) {
  std::mt19937 rng(seed);
  TraceProfile bg = caida_like(seed);
  bg.name = "labeled_attacks";
  bg.num_flows = background_flows;
  bg.max_flow_pkts = 8;
  bg.duration_sec = 0.5;
  bg.num_hosts = 256;

  LabeledAttackTrace out;
  out.trace = generate_trace(bg);
  // Attacks spread over distinct 100 ms windows, offset from the window
  // boundaries so µs-rounded capture clocks cannot move packets across a
  // boundary.  Victims live outside the background host pools.
  const uint32_t v1 = ipv4(203, 0, 113, 10);
  const uint32_t v2 = ipv4(203, 0, 113, 20);
  const uint32_t v3 = ipv4(203, 0, 113, 30);
  out.syn_flood =
      inject_syn_flood(out.trace, v1, /*num_sources=*/6,
                       /*syns_per_source=*/24, 20'000'000, rng);
  out.port_scan = inject_port_scan(out.trace, ipv4(198, 18, 7, 7), v2,
                                   /*num_ports=*/60, 120'000'000, rng);
  out.spreader = inject_super_spreader(out.trace, ipv4(198, 18, 9, 9),
                                       /*num_dsts=*/80, 220'000'000, rng);
  out.volume_burst =
      inject_volume_burst(out.trace, v3, /*dport=*/9999, /*num_packets=*/120,
                          320'000'000, /*duration_ns=*/40'000'000, rng);
  out.prefix_flood = inject_prefix_flood(
      out.trace, ipv4(198, 51, 100, 0), /*num_sources=*/15,
      /*pkts_per_source=*/8, v3, /*dport=*/8888, /*pkt_len=*/128,
      420'000'000, rng);
  out.trace.sort_by_time();
  return out;
}

}  // namespace newton
