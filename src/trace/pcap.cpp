#include "trace/pcap.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "packet/wire.h"

namespace newton {
namespace {

constexpr uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr uint32_t kMagicNsec = 0xA1B23C4D;
constexpr uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr uint32_t kMagicNsecSwapped = 0x4D3CB2A1;
constexpr uint32_t kLinkEthernet = 1;

uint32_t swap32(uint32_t v) {
  return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) |
         (v >> 24);
}

uint16_t swap16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

struct Reader {
  std::ifstream is;
  bool swapped = false;

  bool read_raw(void* dst, std::size_t n) {
    is.read(static_cast<char*>(dst), static_cast<long>(n));
    return static_cast<bool>(is);
  }
  bool u32(uint32_t& v) {
    if (!read_raw(&v, 4)) return false;
    if (swapped) v = swap32(v);
    return true;
  }
  bool u16(uint16_t& v) {
    if (!read_raw(&v, 2)) return false;
    if (swapped) v = swap16(v);
    return true;
  }
};

void put32le(std::ofstream& os, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, 4);
}

void put16le(std::ofstream& os, uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  os.write(b, 2);
}

}  // namespace

Trace load_pcap(const std::string& path, PcapLoadStats* stats) {
  Reader r;
  r.is.open(path, std::ios::binary);
  if (!r.is) throw std::runtime_error("pcap: cannot open " + path);

  uint32_t magic;
  if (!r.read_raw(&magic, 4)) throw std::runtime_error("pcap: empty file");
  bool nsec;
  if (magic == kMagicUsec) {
    nsec = false;
  } else if (magic == kMagicNsec) {
    nsec = true;
  } else if (magic == kMagicUsecSwapped) {
    nsec = false;
    r.swapped = true;
  } else if (magic == kMagicNsecSwapped) {
    nsec = true;
    r.swapped = true;
  } else {
    throw std::runtime_error("pcap: bad magic");
  }

  uint16_t ver_major, ver_minor;
  uint32_t thiszone, sigfigs, snaplen, linktype;
  if (!r.u16(ver_major) || !r.u16(ver_minor) || !r.u32(thiszone) ||
      !r.u32(sigfigs) || !r.u32(snaplen) || !r.u32(linktype))
    throw std::runtime_error("pcap: truncated global header");
  if (linktype != kLinkEthernet)
    throw std::runtime_error("pcap: unsupported linktype " +
                             std::to_string(linktype));

  Trace t;
  t.name = path;
  PcapLoadStats st;
  for (;;) {
    uint32_t ts_sec, ts_frac, incl_len, orig_len;
    if (!r.u32(ts_sec)) break;  // clean EOF
    if (!r.u32(ts_frac) || !r.u32(incl_len) || !r.u32(orig_len))
      throw std::runtime_error("pcap: truncated record header");
    if (incl_len > (1u << 24))
      throw std::runtime_error("pcap: implausible record length");
    std::vector<uint8_t> frame(incl_len);
    if (!r.read_raw(frame.data(), incl_len))
      throw std::runtime_error("pcap: truncated record body");
    ++st.frames;
    const auto parsed = parse_frame(frame);
    if (!parsed) {
      ++st.skipped;
      continue;
    }
    Packet p = parsed->packet;
    p.ts_ns = uint64_t{ts_sec} * 1'000'000'000ull +
              (nsec ? ts_frac : uint64_t{ts_frac} * 1'000ull);
    p.wire_len = orig_len;
    t.packets.push_back(p);
    ++st.parsed;
  }
  if (stats) *stats = st;
  return t;
}

void save_pcap(const Trace& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("pcap: cannot open " + path);
  put32le(os, kMagicNsec);
  put16le(os, 2);
  put16le(os, 4);
  put32le(os, 0);          // thiszone
  put32le(os, 0);          // sigfigs
  put32le(os, 1 << 16);    // snaplen
  put32le(os, kLinkEthernet);
  for (const Packet& p : t.packets) {
    const auto frame = deparse_frame(p);
    put32le(os, static_cast<uint32_t>(p.ts_ns / 1'000'000'000ull));
    put32le(os, static_cast<uint32_t>(p.ts_ns % 1'000'000'000ull));
    put32le(os, static_cast<uint32_t>(frame.size()));
    put32le(os, static_cast<uint32_t>(frame.size()));
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<long>(frame.size()));
  }
  if (!os) throw std::runtime_error("pcap: write failed");
}

}  // namespace newton
