#include "trace/pcap.h"

#include <cstdint>
#include <stdexcept>

#include "packet/wire.h"

namespace newton {
namespace {

constexpr uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr uint32_t kMagicNsec = 0xA1B23C4D;
constexpr uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr uint32_t kMagicNsecSwapped = 0x4D3CB2A1;
constexpr uint32_t kLinkEthernet = 1;

uint32_t swap32(uint32_t v) {
  return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) |
         (v >> 24);
}

uint16_t swap16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

void put32le(std::ofstream& os, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, 4);
}

void put16le(std::ofstream& os, uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  os.write(b, 2);
}

}  // namespace

PcapReader::PcapReader(const std::string& path) {
  is_.open(path, std::ios::binary);
  if (!is_) throw std::runtime_error("pcap: cannot open " + path);

  uint32_t magic;
  if (!is_.read(reinterpret_cast<char*>(&magic), 4))
    throw std::runtime_error("pcap: empty file");
  if (magic == kMagicUsec) {
    nsec_ = false;
  } else if (magic == kMagicNsec) {
    nsec_ = true;
  } else if (magic == kMagicUsecSwapped) {
    nsec_ = false;
    swapped_ = true;
  } else if (magic == kMagicNsecSwapped) {
    nsec_ = true;
    swapped_ = true;
  } else {
    throw std::runtime_error("pcap: bad magic");
  }

  uint16_t ver_major, ver_minor;
  uint32_t thiszone, sigfigs, snaplen, linktype;
  const auto u16 = [&](uint16_t& v) {
    if (!is_.read(reinterpret_cast<char*>(&v), 2)) return false;
    if (swapped_) v = swap16(v);
    return true;
  };
  if (!u16(ver_major) || !u16(ver_minor) || !u32(thiszone) || !u32(sigfigs) ||
      !u32(snaplen) || !u32(linktype))
    throw std::runtime_error("pcap: truncated global header");
  if (linktype != kLinkEthernet)
    throw std::runtime_error("pcap: unsupported linktype " +
                             std::to_string(linktype));
  // Pre-size the record buffer so steady-state reads never reallocate
  // (records are checked against the same cap below).
  frame_.reserve(snaplen != 0 && snaplen < (1u << 24) ? snaplen : (1u << 16));
}

bool PcapReader::u32(uint32_t& v) {
  if (!is_.read(reinterpret_cast<char*>(&v), 4)) return false;
  if (swapped_) v = swap32(v);
  return true;
}

bool PcapReader::next() {
  uint32_t ts_sec, ts_frac, incl_len;
  if (!u32(ts_sec)) return false;  // clean EOF
  if (!u32(ts_frac) || !u32(incl_len) || !u32(orig_len_))
    throw std::runtime_error("pcap: truncated record header");
  if (incl_len > (1u << 24))
    throw std::runtime_error("pcap: implausible record length");
  frame_.resize(incl_len);
  if (!is_.read(reinterpret_cast<char*>(frame_.data()), incl_len))
    throw std::runtime_error("pcap: truncated record body");
  ts_ns_ = uint64_t{ts_sec} * 1'000'000'000ull +
           (nsec_ ? ts_frac : uint64_t{ts_frac} * 1'000ull);
  return true;
}

Trace load_pcap(const std::string& path, PcapLoadStats* stats) {
  PcapReader r(path);
  Trace t;
  t.name = path;
  PcapLoadStats st;
  while (r.next()) {
    ++st.frames;
    const auto parsed = parse_frame(r.frame());
    if (!parsed) {
      ++st.skipped;
      switch (classify_frame(r.frame().data(), r.frame().size())) {
        case FrameKind::Vlan: ++st.skipped_vlan; break;
        case FrameKind::Ipv6: ++st.skipped_ipv6; break;
        default: ++st.skipped_other; break;
      }
      continue;
    }
    Packet p = parsed->packet;
    p.ts_ns = r.ts_ns();
    p.wire_len = r.orig_len();
    t.packets.push_back(p);
    ++st.parsed;
  }
  if (stats) *stats = st;
  return t;
}

void save_pcap(const Trace& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("pcap: cannot open " + path);
  put32le(os, kMagicNsec);
  put16le(os, 2);
  put16le(os, 4);
  put32le(os, 0);          // thiszone
  put32le(os, 0);          // sigfigs
  put32le(os, 1 << 16);    // snaplen
  put32le(os, kLinkEthernet);
  for (const Packet& p : t.packets) {
    const auto frame = deparse_frame(p);
    put32le(os, static_cast<uint32_t>(p.ts_ns / 1'000'000'000ull));
    put32le(os, static_cast<uint32_t>(p.ts_ns % 1'000'000'000ull));
    put32le(os, static_cast<uint32_t>(frame.size()));
    put32le(os, static_cast<uint32_t>(frame.size()));
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<long>(frame.size()));
  }
  if (!os) throw std::runtime_error("pcap: write failed");
}

}  // namespace newton
