#include "trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace newton {
namespace {

constexpr char kMagic[4] = {'N', 'T', 'R', 'C'};
constexpr uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, T v) {
  std::array<char, sizeof(T)> buf;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf.data(), buf.size());
}

template <typename T>
T get(std::istream& is) {
  std::array<char, sizeof(T)> buf;
  is.read(buf.data(), buf.size());
  if (!is) throw std::runtime_error("trace_io: truncated stream");
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

// Parse "a.b.c.d" or a raw unsigned integer.
std::optional<uint32_t> parse_ip(const std::string& s) {
  if (s.find('.') == std::string::npos) {
    try {
      return static_cast<uint32_t>(std::stoul(s));
    } catch (...) {
      return std::nullopt;
    }
  }
  unsigned a, b, c, d;
  char extra;
  std::istringstream iss(s);
  char dot1, dot2, dot3;
  if (!(iss >> a >> dot1 >> b >> dot2 >> c >> dot3 >> d) || dot1 != '.' ||
      dot2 != '.' || dot3 != '.' || a > 255 || b > 255 || c > 255 || d > 255)
    return std::nullopt;
  if (iss >> extra) return std::nullopt;
  return ipv4(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
              static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

}  // namespace

void write_trace(const Trace& t, std::ostream& os) {
  os.write(kMagic, 4);
  put<uint32_t>(os, kVersion);
  put<uint32_t>(os, static_cast<uint32_t>(t.name.size()));
  os.write(t.name.data(), static_cast<long>(t.name.size()));
  put<uint64_t>(os, t.packets.size());
  for (const Packet& p : t.packets) {
    put<uint64_t>(os, p.ts_ns);
    put<uint32_t>(os, p.wire_len);
    for (uint32_t f : p.fields) put<uint32_t>(os, f);
  }
  if (!os) throw std::runtime_error("trace_io: write failed");
}

Trace read_trace(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("trace_io: bad magic");
  const uint32_t version = get<uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("trace_io: unsupported version " +
                             std::to_string(version));
  Trace t;
  const uint32_t name_len = get<uint32_t>(is);
  if (name_len > (1u << 20))
    throw std::runtime_error("trace_io: implausible name length");
  t.name.resize(name_len);
  is.read(t.name.data(), name_len);
  const uint64_t count = get<uint64_t>(is);
  t.packets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Packet p;
    p.ts_ns = get<uint64_t>(is);
    p.wire_len = get<uint32_t>(is);
    for (std::size_t f = 0; f < kNumFields; ++f)
      p.fields[f] = get<uint32_t>(is);
    t.packets.push_back(p);
  }
  return t;
}

void save_trace(const Trace& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  write_trace(t, os);
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return read_trace(is);
}

std::optional<Packet> parse_csv_line(const std::string& line) {
  std::string trimmed = line;
  const auto hash = trimmed.find('#');
  if (hash != std::string::npos) trimmed.resize(hash);
  if (trimmed.find_first_not_of(" \t\r\n") == std::string::npos)
    return std::nullopt;

  std::vector<std::string> cols;
  std::istringstream iss(trimmed);
  std::string col;
  while (std::getline(iss, col, ',')) cols.push_back(col);
  if (cols.size() != 8) return std::nullopt;

  const auto sip = parse_ip(cols[1]);
  const auto dip = parse_ip(cols[2]);
  if (!sip || !dip) return std::nullopt;
  try {
    return make_packet(*sip, *dip, static_cast<uint32_t>(std::stoul(cols[3])),
                       static_cast<uint32_t>(std::stoul(cols[4])),
                       static_cast<uint32_t>(std::stoul(cols[5])),
                       static_cast<uint32_t>(std::stoul(cols[6])),
                       static_cast<uint32_t>(std::stoul(cols[7])),
                       std::stoull(cols[0]));
  } catch (...) {
    return std::nullopt;
  }
}

void save_trace_csv(const Trace& t, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  os << "# ts_ns,sip,dip,sport,dport,proto,tcp_flags,pkt_len\n";
  for (const Packet& p : t.packets) {
    os << p.ts_ns << ',' << ipv4_to_string(p.sip()) << ','
       << ipv4_to_string(p.dip()) << ',' << p.sport() << ',' << p.dport()
       << ',' << p.proto() << ',' << p.tcp_flags() << ','
       << p.get(Field::PktLen) << '\n';
  }
  if (!os) throw std::runtime_error("trace_io: write failed");
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  Trace t;
  t.name = path;
  std::string line;
  while (std::getline(is, line))
    if (auto p = parse_csv_line(line)) t.packets.push_back(*p);
  return t;
}

}  // namespace newton
