// Attack-traffic injectors.  Each injector appends the attack's packets to a
// trace and returns the identities the corresponding query (Q1-Q9) should
// detect, which the tests and the accuracy benches use as ground truth seeds.
// Call Trace::sort_by_time() after the last injection.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "trace/trace_gen.h"

namespace newton {

struct InjectInfo {
  uint32_t victim = 0;                // attacked / detected host
  std::vector<uint32_t> attackers;    // sources participating
  std::size_t packets_injected = 0;
};

// SYN flood against `victim`: `num_sources` spoofed clients each send
// `syns_per_source` SYNs and never complete the handshake (Q1, Q6).
InjectInfo inject_syn_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t syns_per_source, uint64_t start_ns,
                            std::mt19937& rng);

// TCP port scan: `scanner` probes `num_ports` distinct ports on `victim`
// with bare SYNs (Q4).
InjectInfo inject_port_scan(Trace& trace, uint32_t scanner, uint32_t victim,
                            std::size_t num_ports, uint64_t start_ns,
                            std::mt19937& rng);

// UDP DDoS: many sources flood `victim` with UDP datagrams (Q5).
InjectInfo inject_udp_flood(Trace& trace, uint32_t victim,
                            std::size_t num_sources,
                            std::size_t pkts_per_source, uint64_t start_ns,
                            std::mt19937& rng);

// SSH brute force: `attacker` opens `num_attempts` short, completed TCP
// connections to victim:22 with uniform small payloads (Q2).
InjectInfo inject_ssh_brute(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_attempts, uint64_t start_ns,
                            std::mt19937& rng);

// Slowloris: `attacker` holds `num_conns` completed connections to
// victim:80, each transferring almost no bytes (Q8).
InjectInfo inject_slowloris(Trace& trace, uint32_t attacker, uint32_t victim,
                            std::size_t num_conns, uint64_t start_ns,
                            std::mt19937& rng);

// Super spreader: `source` contacts `num_dsts` distinct destinations (Q3).
InjectInfo inject_super_spreader(Trace& trace, uint32_t source,
                                 std::size_t num_dsts, uint64_t start_ns,
                                 std::mt19937& rng);

// DNS-followed-by-silence: `host` receives `num_responses` DNS responses
// from `resolver` but never opens a TCP connection afterwards — the pattern
// Q9 looks for (possible DNS-based C&C or reflection victim).
InjectInfo inject_dns_no_tcp(Trace& trace, uint32_t host, uint32_t resolver,
                             std::size_t num_responses, uint64_t start_ns,
                             std::mt19937& rng);

// Volume burst: a sudden spike of `num_packets` small UDP datagrams from a
// handful of sources to victim:`dport`, compressed into `duration_ns` — the
// step change the EWMA volume-anomaly detector keys on.
InjectInfo inject_volume_burst(Trace& trace, uint32_t victim, uint16_t dport,
                               std::size_t num_packets, uint64_t start_ns,
                               uint64_t duration_ns, std::mt19937& rng);

// Prefix flood: `num_sources` hosts drawn from one /24 (`prefix24` is the
// network address) push `pkts_per_source` packets of `pkt_len` bytes at
// `victim` — lights up the /8, /16 and /24 levels of the hierarchical
// heavy-hitter detector at once.  attackers[0] holds the /24 base.
InjectInfo inject_prefix_flood(Trace& trace, uint32_t prefix24,
                               std::size_t num_sources,
                               std::size_t pkts_per_source, uint32_t victim,
                               uint16_t dport, uint32_t pkt_len,
                               uint64_t start_ns, std::mt19937& rng);

// One labeled attack trace: a small background profile with five attacks
// layered on top, each label carrying the injector's ground-truth seed.
// This is the corpus-fixture generator (tests/corpus/detectors.pcap) and
// the profile behind `newton_tool replay` demos — every detector in
// src/detectors/ has its scenario represented.  Deterministic per seed.
struct LabeledAttackTrace {
  Trace trace;
  InjectInfo syn_flood;      // det_syn_flood victim
  InjectInfo port_scan;      // det_port_scan scanner
  InjectInfo spreader;       // det_superspreader source
  InjectInfo volume_burst;   // det_ewma_volume victim
  InjectInfo prefix_flood;   // det_prefix_hh /24 (attackers[0])
};

LabeledAttackTrace make_labeled_attack_trace(uint32_t seed,
                                             std::size_t background_flows =
                                                 120);

}  // namespace newton
