#include "trace/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace newton {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::sample(std::mt19937& rng) const {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double x = u(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace newton
