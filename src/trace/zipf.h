// Bounded Zipf sampler used for flow-size and popularity distributions.
// Internet flow sizes are heavy-tailed; CAIDA-style backbone traces are well
// approximated by Zipf with exponent ~1.0-1.2.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace newton {

class ZipfSampler {
 public:
  // Ranks 1..n with P(rank=k) proportional to k^-alpha.
  ZipfSampler(std::size_t n, double alpha);

  // Returns a rank in [0, n).
  std::size_t sample(std::mt19937& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace newton
