// Classic libpcap file format support, so the monitor can replay real
// captures (and export synthetic ones for inspection in standard tools).
//
// Supports both byte orders, microsecond (0xA1B2C3D4) and nanosecond
// (0xA1B23C4D) timestamp magics, and LINKTYPE_ETHERNET.  Frames that do not
// parse as Ethernet/IPv4 are counted and skipped.
#pragma once

#include <string>

#include "trace/trace_gen.h"

namespace newton {

struct PcapLoadStats {
  std::size_t frames = 0;
  std::size_t parsed = 0;
  std::size_t skipped = 0;  // non-IPv4 or malformed
};

// Load an Ethernet pcap into a Trace (timestamps become ts_ns).
// Throws std::runtime_error on malformed container structure.
Trace load_pcap(const std::string& path, PcapLoadStats* stats = nullptr);

// Write the trace as a nanosecond-resolution pcap (frames synthesized via
// the wire codec).
void save_pcap(const Trace& t, const std::string& path);

}  // namespace newton
