// Classic libpcap file format support, so the monitor can replay real
// captures (and export synthetic ones for inspection in standard tools).
//
// Supports both byte orders, microsecond (0xA1B2C3D4) and nanosecond
// (0xA1B23C4D) timestamp magics, and LINKTYPE_ETHERNET.  Frames that do not
// parse as Ethernet/IPv4 are counted and skipped, with 802.1Q-tagged and
// IPv6 frames attributed to distinct counters.
//
// Two readers share the container parsing:
//   * load_pcap        — whole-file load into an in-memory Trace;
//   * PcapReader       — record-at-a-time streaming with bounded memory (one
//                        reusable frame buffer), the substrate of the live
//                        ingestion PcapFileSource (src/ingest/).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_gen.h"

namespace newton {

struct PcapLoadStats {
  std::size_t frames = 0;
  std::size_t parsed = 0;
  std::size_t skipped = 0;       // total not parsed (all reasons below)
  std::size_t skipped_vlan = 0;  // 802.1Q-tagged frames
  std::size_t skipped_ipv6 = 0;  // IPv6 ethertype
  std::size_t skipped_other = 0; // other ethertypes / malformed
};

// Streaming pcap record reader.  Parses the global header on open (throws
// std::runtime_error on a malformed container) and then yields one record
// per next() into a caller-visible reusable buffer — memory use is bounded
// by the largest record, never the file.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);

  // Advance to the next record.  Returns false on clean EOF; throws on a
  // truncated or implausible record.  After true: frame() holds the captured
  // bytes, ts_ns() / orig_len() the record header values.
  bool next();

  const std::vector<uint8_t>& frame() const { return frame_; }
  uint64_t ts_ns() const { return ts_ns_; }
  uint32_t orig_len() const { return orig_len_; }

 private:
  bool u32(uint32_t& v);

  std::ifstream is_;
  bool swapped_ = false;
  bool nsec_ = false;
  std::vector<uint8_t> frame_;
  uint64_t ts_ns_ = 0;
  uint32_t orig_len_ = 0;
};

// Load an Ethernet pcap into a Trace (timestamps become ts_ns).
// Throws std::runtime_error on malformed container structure.
Trace load_pcap(const std::string& path, PcapLoadStats* stats = nullptr);

// Write the trace as a nanosecond-resolution pcap (frames synthesized via
// the wire codec).
void save_pcap(const Trace& t, const std::string& path);

}  // namespace newton
