#include "trace/trace_gen.h"

#include <algorithm>

#include "trace/zipf.h"

namespace newton {
namespace {

// Address pools: clients in 10.0.0.0/16-ish, servers in 172.16.0.0/16-ish.
uint32_t client_ip(std::size_t i) {
  return ipv4(10, 0, static_cast<uint8_t>(i >> 8), static_cast<uint8_t>(i));
}
uint32_t server_ip(std::size_t i) {
  return ipv4(172, 16, static_cast<uint8_t>(i >> 8), static_cast<uint8_t>(i));
}

uint16_t ephemeral_port(std::mt19937& rng) {
  std::uniform_int_distribution<uint32_t> d(32768, 60999);
  return static_cast<uint16_t>(d(rng));
}

uint32_t payload_len(std::mt19937& rng) {
  // Bimodal: small (ACK-sized) and MTU-sized packets.
  std::bernoulli_distribution big(0.45);
  if (big(rng)) return 1400;
  std::uniform_int_distribution<uint32_t> d(64, 320);
  return d(rng);
}

}  // namespace

void Trace::sort_by_time() {
  std::stable_sort(packets.begin(), packets.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.ts_ns < b.ts_ns;
                   });
}

void emit_tcp_connection(std::vector<Packet>& out, uint32_t client,
                         uint32_t server, uint16_t sport, uint16_t dport,
                         std::size_t data_pkts, uint64_t start_ns,
                         uint64_t gap_ns, std::mt19937& rng, bool complete) {
  uint64_t t = start_ns;
  auto fwd = [&](uint32_t flags, uint32_t len) {
    out.push_back(make_packet(client, server, sport, dport, kProtoTcp, flags,
                              len, t));
    t += gap_ns;
  };
  auto rev = [&](uint32_t flags, uint32_t len) {
    out.push_back(make_packet(server, client, dport, sport, kProtoTcp, flags,
                              len, t));
    t += gap_ns;
  };

  fwd(kTcpSyn, 64);
  if (!complete) return;
  rev(kTcpSynAck, 64);
  fwd(kTcpAck, 64);

  std::bernoulli_distribution from_server(0.6);  // responses dominate bytes
  for (std::size_t i = 0; i < data_pkts; ++i) {
    const uint32_t len = payload_len(rng);
    if (from_server(rng))
      rev(kTcpAck | kTcpPsh, len);
    else
      fwd(kTcpAck | kTcpPsh, len);
  }

  fwd(kTcpFin | kTcpAck, 64);
  rev(kTcpFin | kTcpAck, 64);
  fwd(kTcpAck, 64);
}

TraceProfile caida_like(uint32_t seed) {
  TraceProfile p;
  p.name = "caida-like";
  p.num_flows = 20'000;
  p.zipf_alpha = 1.15;
  p.max_flow_pkts = 2'000;
  p.tcp_fraction = 0.88;
  p.dns_fraction = 0.20;
  p.num_hosts = 4'096;
  p.seed = seed;
  return p;
}

TraceProfile mawi_like(uint32_t seed) {
  TraceProfile p;
  p.name = "mawi-like";
  p.num_flows = 20'000;
  p.zipf_alpha = 1.0;
  p.max_flow_pkts = 800;
  p.tcp_fraction = 0.70;
  p.dns_fraction = 0.45;
  p.num_hosts = 8'192;
  p.seed = seed;
  return p;
}

Trace generate_trace(const TraceProfile& profile) {
  std::mt19937 rng(profile.seed);
  Trace trace;
  trace.name = profile.name;

  const uint64_t duration_ns =
      static_cast<uint64_t>(profile.duration_sec * 1e9);
  std::uniform_int_distribution<uint64_t> start_dist(0, duration_ns);
  std::uniform_int_distribution<std::size_t> host_dist(0,
                                                       profile.num_hosts - 1);
  // Server popularity is itself Zipf-distributed (a few hot services).
  ZipfSampler server_pop(profile.num_hosts, 0.9);
  ZipfSampler flow_size(profile.max_flow_pkts, profile.zipf_alpha);
  std::bernoulli_distribution is_tcp(profile.tcp_fraction);
  std::bernoulli_distribution is_dns(profile.dns_fraction);
  // Common service ports with rough popularity weights.
  const std::vector<uint16_t> tcp_ports{80, 443, 443, 443, 80, 22, 25, 8080};
  std::uniform_int_distribution<std::size_t> tcp_port_dist(
      0, tcp_ports.size() - 1);

  for (std::size_t f = 0; f < profile.num_flows; ++f) {
    const uint32_t client = client_ip(host_dist(rng));
    const uint32_t server = server_ip(server_pop.sample(rng));
    const uint64_t start = start_dist(rng);
    const std::size_t pkts = flow_size.sample(rng) + 1;
    // Spread the flow's packets over a window proportional to its size.
    const uint64_t gap = 20'000 + (rng() % 80'000);  // 20-100us inter-packet

    if (is_tcp(rng)) {
      emit_tcp_connection(trace.packets, client, server,
                          ephemeral_port(rng), tcp_ports[tcp_port_dist(rng)],
                          pkts, start, gap, rng, /*complete=*/true);
    } else {
      const uint16_t sport = ephemeral_port(rng);
      const uint16_t dport =
          is_dns(rng) ? 53 : static_cast<uint16_t>(1024 + (rng() % 40000));
      uint64_t t = start;
      const std::size_t udp_pkts = std::min<std::size_t>(pkts, 64);
      for (std::size_t i = 0; i < udp_pkts; ++i) {
        const bool reply = (i % 2 == 1) && dport == 53;
        if (reply)
          trace.packets.push_back(make_packet(server, client, dport, sport,
                                              kProtoUdp, 0, 180, t));
        else
          trace.packets.push_back(make_packet(client, server, sport, dport,
                                              kProtoUdp, 0,
                                              dport == 53 ? 80 : 512, t));
        t += gap;
      }
    }
  }

  trace.sort_by_time();
  return trace;
}

}  // namespace newton
