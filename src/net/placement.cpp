#include "net/placement.h"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace newton {

bool Placement::has(int sw, std::size_t slice) const {
  const auto it = assignment.find(sw);
  return it != assignment.end() &&
         std::find(it->second.begin(), it->second.end(), slice) !=
             it->second.end();
}

Placement place_resilient(const Topology& t,
                          const std::vector<int>& edge_switches,
                          std::size_t num_slices) {
  Placement p;
  if (num_slices == 0) return p;
  // Layered reachability: depth d (1-based) -> switches reachable in d-1
  // hops from any ingress edge switch.
  std::set<std::pair<int, std::size_t>> seen;  // (switch, depth)
  std::queue<std::pair<int, std::size_t>> q;
  for (int s : edge_switches) {
    // Callers seed this from traffic descriptions, which may name host
    // nodes; only switches can host a slice, so a host id must not be
    // assigned slice 0 of the layering.  Dead switches host nothing.
    if (!t.is_switch(s) || !t.node_up(s)) continue;
    if (seen.insert({s, 1}).second) q.push({s, 1});
  }
  while (!q.empty()) {
    const auto [s, d] = q.front();
    q.pop();
    auto& slot = p.assignment[s];
    if (std::find(slot.begin(), slot.end(), d - 1) == slot.end())
      slot.push_back(d - 1);
    if (d >= num_slices) continue;
    for (int n : t.neighbors(s)) {
      if (!t.is_switch(n)) continue;
      if (seen.insert({n, d + 1}).second) q.push({n, d + 1});
    }
  }
  for (auto& [s, slices] : p.assignment) std::sort(slices.begin(), slices.end());
  return p;
}

Placement place_on_path(const std::vector<int>& sw_path,
                        std::size_t num_slices) {
  if (sw_path.size() < num_slices)
    throw std::invalid_argument(
        "place_on_path: path shorter than the slice sequence");
  Placement p;
  for (std::size_t i = 0; i < num_slices; ++i)
    p.assignment[sw_path[i]].push_back(i);
  return p;
}

PlacementStats placement_stats(const Placement& p,
                               const std::vector<QuerySlice>& slices) {
  PlacementStats st;
  st.switches = p.assignment.size();
  for (const auto& [sw, idxs] : p.assignment) {
    for (std::size_t i : idxs) {
      const QuerySlice& sl = slices.at(i);
      st.total_entries += sl.part.num_modules();
      if (sl.index == 0) st.total_entries += sl.part.num_init_entries();
    }
  }
  st.avg_entries_per_switch =
      st.switches == 0 ? 0.0
                       : static_cast<double>(st.total_entries) /
                             static_cast<double>(st.switches);
  return st;
}

}  // namespace newton
