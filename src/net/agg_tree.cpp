#include "net/agg_tree.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace newton {

namespace {

struct AggCounters {
  telemetry::Counter& reports_in;
  telemetry::Counter& link_records;
  telemetry::Counter& merged_away;
  telemetry::Counter& root_records;

  static AggCounters& get() {
    auto& reg = telemetry::Registry::global();
    static AggCounters c{
        reg.counter("newton_agg_reports_in_total",
                    "Reports entering the aggregation tree at the leaves"),
        reg.counter("newton_agg_link_records_total",
                    "Records crossing an aggregation-tree edge"),
        reg.counter("newton_agg_merged_total",
                    "Records absorbed by a per-edge partial merge"),
        reg.counter("newton_agg_root_records_total",
                    "Records the aggregation root forwarded downstream")};
    return c;
  }
};

}  // namespace

MergeOp merge_op_for_slices(const std::vector<QuerySlice>& slices) {
  bool any = false, all_add = true, all_or = true;
  for (const QuerySlice& sl : slices)
    for (const auto& b : sl.part.branches)
      for (const ModuleSpec& m : b.modules) {
        if (m.type != ModuleType::S || m.s.bypass) continue;
        any = true;
        all_add &= m.s.op == SaluOp::Add;
        all_or &= m.s.op == SaluOp::Or;
      }
  if (any && all_add) return MergeOp::Add;
  if (any && all_or) return MergeOp::Or;
  return MergeOp::Max;
}

AggregationTree::AggregationTree(const Topology& t, ReportSink* downstream,
                                 Options opt)
    : opt_(opt), downstream_(downstream) {
  if (opt_.fanin < 2) opt_.fanin = 2;
  // Leaves in switch-id order, then level by level: each run of `fanin`
  // same-level nodes shares one parent until a single root remains.
  std::vector<int> sw = t.switches();
  std::sort(sw.begin(), sw.end());
  for (int s : sw) {
    leaf_of_[static_cast<uint32_t>(s)] = nodes_.size();
    nodes_.emplace_back();
  }
  if (nodes_.empty()) nodes_.emplace_back();  // degenerate: root only
  level_start_.push_back(0);
  std::size_t begin = 0, count = nodes_.size();
  while (count > 1) {
    level_start_.push_back(nodes_.size());
    const std::size_t parents = (count + opt_.fanin - 1) / opt_.fanin;
    for (std::size_t p = 0; p < parents; ++p) nodes_.emplace_back();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t parent = level_start_.back() + i / opt_.fanin;
      nodes_[begin + i].parent = static_cast<int>(parent);
      ++nodes_[parent].children;
    }
    begin = level_start_.back();
    count = parents;
  }
  stats_.depth = level_start_.size();
  stats_.nodes = nodes_.size();
  for (const Node& n : nodes_)
    stats_.max_fanin = std::max(stats_.max_fanin, n.children);
}

void AggregationTree::set_merge_op(const std::string& query, MergeOp op) {
  merge_ops_[query] = op;
}

MergeOp AggregationTree::op_for(const MergeKey& k) const {
  const auto it = merge_ops_.find(k.query);
  return it == merge_ops_.end() ? MergeOp::Max : it->second;
}

void AggregationTree::report(const ReportRecord& r) {
  ++stats_.reports_in;
  AggCounters::get().reports_in.add();
  // Unknown reporters (e.g. software sources) enter at the root.
  const auto leaf = leaf_of_.find(r.switch_id);
  Node& node =
      leaf == leaf_of_.end() ? nodes_.back() : nodes_[leaf->second];
  if (r.deferred) {
    node.passthrough.push_back(r);
    return;
  }
  MergeKey k;
  if (const auto* owner =
          opt_.attribution
              ? opt_.attribution->owner_of(r.switch_id, r.qid)
              : nullptr) {
    k.query = owner->first;
    k.branch = owner->second;
  } else {
    k.branch = (static_cast<uint64_t>(r.switch_id) << 16) | r.qid;
  }
  k.window = opt_.window_ns == 0 ? 0 : r.ts_ns / opt_.window_ns;
  k.next_slice = r.next_slice;
  k.keys = r.oper_keys;
  const auto [it, fresh] = node.merged.emplace(k, r);
  if (fresh) return;
  ++stats_.merged_away;
  AggCounters::get().merged_away.add();
  ReportRecord& dst = it->second;
  switch (op_for(k)) {
    case MergeOp::Add: dst.global_result += r.global_result; break;
    case MergeOp::Or: dst.global_result |= r.global_result; break;
    case MergeOp::Max:
      dst.global_result = std::max(dst.global_result, r.global_result);
      break;
  }
  dst.ts_ns = std::max(dst.ts_ns, r.ts_ns);
  if (r.switch_id < dst.switch_id) {
    dst.switch_id = r.switch_id;
    dst.qid = r.qid;
    dst.hash_result = r.hash_result;
    dst.state_result = r.state_result;
  }
}

void AggregationTree::absorb(Node& parent, Node& child) {
  for (auto& [k, r] : child.merged) {
    ++stats_.link_records;
    AggCounters::get().link_records.add();
    const auto [it, fresh] = parent.merged.emplace(k, r);
    if (fresh) continue;
    ++stats_.merged_away;
    AggCounters::get().merged_away.add();
    ReportRecord& dst = it->second;
    switch (op_for(k)) {
      case MergeOp::Add: dst.global_result += r.global_result; break;
      case MergeOp::Or: dst.global_result |= r.global_result; break;
      case MergeOp::Max:
        dst.global_result = std::max(dst.global_result, r.global_result);
        break;
    }
    dst.ts_ns = std::max(dst.ts_ns, r.ts_ns);
    if (r.switch_id < dst.switch_id) {
      dst.switch_id = r.switch_id;
      dst.qid = r.qid;
      dst.hash_result = r.hash_result;
      dst.state_result = r.state_result;
    }
  }
  child.merged.clear();
  for (ReportRecord& r : child.passthrough) {
    ++stats_.link_records;
    AggCounters::get().link_records.add();
    parent.passthrough.push_back(r);
  }
  child.passthrough.clear();
}

void AggregationTree::flush() {
  // Leaf-to-root propagation in node order (children always precede their
  // parent by construction), then the root emits.
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i)
    if (nodes_[i].parent >= 0)
      absorb(nodes_[static_cast<std::size_t>(nodes_[i].parent)], nodes_[i]);
  Node& root = nodes_.back();
  for (const auto& [k, r] : root.merged) {
    ++stats_.root_records;
    AggCounters::get().root_records.add();
    if (downstream_) downstream_->report(r);
  }
  root.merged.clear();
  for (const ReportRecord& r : root.passthrough) {
    ++stats_.root_records;
    ++stats_.passthrough;
    AggCounters::get().root_records.add();
    if (downstream_) downstream_->report(r);
  }
  root.passthrough.clear();
}

}  // namespace newton
