#include "net/network.h"

#include <string>

#include "telemetry/telemetry.h"

namespace newton {

namespace {

// Per-slice CQE traversal series: how many times slice d of any deployed
// query executed on some hop.  Slice 0 executions are inferred from a hop
// emitting a fresh SP header (or finishing a single-slice execution);
// slices > 0 from a hop consuming the SP header addressed to them.
telemetry::Counter& slice_traversals(std::size_t slice) {
  return telemetry::Registry::global().counter(
      "newton_cqe_slice_traversals_total",
      "CQE slice executions by slice index, across all switches",
      {{"slice", std::to_string(slice)}});
}

struct NetCounters {
  telemetry::Counter& hops;
  telemetry::Counter& sp_bytes;
  telemetry::Counter& deferred;

  static NetCounters& get() {
    auto& reg = telemetry::Registry::global();
    static NetCounters c{
        reg.counter("newton_net_hops_total",
                    "Switch hops traversed by forwarded packets"),
        reg.counter("newton_cqe_sp_link_bytes_total",
                    "SP (result snapshot) header bytes carried on links"),
        reg.counter("newton_cqe_deferred_total",
                    "Executions handed to the software deferred handler at "
                    "the egress edge")};
    return c;
  }
};

}  // namespace

Network::Network(Topology topo, std::size_t stages_per_switch,
                 ReportSink* sink, std::size_t bank_registers)
    : topo_(std::move(topo)), stages_per_switch_(stages_per_switch) {
  for (int s : topo_.switches())
    switches_[s] = std::make_unique<NewtonSwitch>(
        static_cast<uint32_t>(s), stages_per_switch, sink, bank_registers,
        /*latency_seed=*/42 + static_cast<uint32_t>(s));
}

Network::SendStats Network::send(const Packet& pkt, int src_host,
                                 int dst_host) {
  const uint32_t fh = static_cast<uint32_t>(
      FiveTupleHash{}(FiveTuple::of(pkt)));
  const auto path = route(topo_, src_host, dst_host, fh);
  if (!path) return {};
  return send_along(pkt, switches_on(topo_, *path));
}

Network::SendStats Network::send_along(const Packet& pkt,
                                       const std::vector<int>& sw_path) {
  SendStats st;
  NetCounters& tc = NetCounters::get();
  ++packets_sent_;
  std::optional<SpHeader> sp;
  bool first_hop = true;
  for (int node : sw_path) {
    ++st.hops;
    tc.hops.add();
    auto& sw = *switches_.at(node);
    // The snapshot crosses the link as 12 wire bytes; encode/decode at each
    // hop exercises the real SP codec end to end.
    std::optional<SpHeader> sp_in;
    if (sp) {
      const auto wire = sp_encode(*sp);
      sp_in = sp_decode(wire.data(), wire.size());
    }
    const auto out = sw.process(pkt, sp_in, /*at_ingress_edge=*/first_hop);
    first_hop = false;
    if (out.sp_consumed && sp_in) {
      // This hop hosted and ran the slice the header addressed.
      slice_traversals(sp_in->next_slice).add();
    } else if (!sp_in && out.sp_out) {
      // A fresh execution started here: slice 0 ran and snapshotted onward.
      slice_traversals(0).add();
    }
    if (out.sp_out) {
      sp = out.sp_out;
    } else if (out.sp_consumed) {
      sp.reset();  // final slice ran (or the query stopped itself)
    }
    // else: this hop hosts no successor slice; keep carrying the header.
    if (sp) {
      st.sp_link_bytes += kSpHeaderBytes;
      sp_link_bytes_ += kSpHeaderBytes;
      tc.sp_bytes.add(kSpHeaderBytes);
    }
    payload_link_bytes_ += pkt.wire_len;
  }
  st.delivered = true;
  if (sp) {
    // Egress with an unfinished query: switches strip the SP header before
    // the packet reaches end hosts; the snapshot is mirrored to software.
    st.deferred = true;
    tc.deferred.add();
    if (deferred_) deferred_(pkt, *sp);
  }
  return st;
}

}  // namespace newton
