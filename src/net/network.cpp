#include "net/network.h"

#include <string>

#include "telemetry/telemetry.h"

namespace newton {

namespace {

// Per-slice CQE traversal series: how many times slice d of any deployed
// query executed on some hop.  Slice 0 executions are inferred from a hop
// emitting a fresh SP header (or finishing a single-slice execution);
// slices > 0 from a hop consuming the SP header addressed to them.
telemetry::Counter& slice_traversals(std::size_t slice) {
  return telemetry::Registry::global().counter(
      "newton_cqe_slice_traversals_total",
      "CQE slice executions by slice index, across all switches",
      {{"slice", std::to_string(slice)}});
}

struct NetCounters {
  telemetry::Counter& hops;
  telemetry::Counter& sp_bytes;
  telemetry::Counter& deferred;
  telemetry::Counter& dropped;

  static NetCounters& get() {
    auto& reg = telemetry::Registry::global();
    static NetCounters c{
        reg.counter("newton_net_hops_total",
                    "Switch hops traversed by forwarded packets"),
        reg.counter("newton_cqe_sp_link_bytes_total",
                    "SP (result snapshot) header bytes carried on links"),
        reg.counter("newton_cqe_deferred_total",
                    "Executions handed to the software deferred handler at "
                    "the egress edge"),
        reg.counter("newton_net_dropped_packets_total",
                    "Packets dropped for lack of a live route (the network "
                    "was partitioned by link/switch failures)")};
    return c;
  }
};

}  // namespace

Network::Network(Topology topo, std::size_t stages_per_switch,
                 ReportSink* sink, std::size_t bank_registers)
    : topo_(std::move(topo)), stages_per_switch_(stages_per_switch) {
  for (int s : topo_.switches())
    switches_[s] = std::make_unique<NewtonSwitch>(
        static_cast<uint32_t>(s), stages_per_switch, sink, bank_registers,
        /*latency_seed=*/42 + static_cast<uint32_t>(s));
}

Network::SendStats Network::send(const Packet& pkt, int src_host,
                                 int dst_host) {
  const uint32_t fh = static_cast<uint32_t>(
      FiveTupleHash{}(FiveTuple::of(pkt)));
  const auto path = route(topo_, src_host, dst_host, fh);
  if (!path) {
    ++packets_dropped_;
    NetCounters::get().dropped.add();
    return {};
  }
  return send_along(pkt, switches_on(topo_, *path));
}

void Network::set_window_ns(uint64_t w) {
  for (auto& [node, sw] : switches_) sw->set_window_ns(w);
}

Network::SendStats Network::send_along(const Packet& pkt,
                                       const std::vector<int>& sw_path) {
  SendStats st;
  NetCounters& tc = NetCounters::get();
  ++packets_sent_;
  // Every concurrent sliced query carries its own SP header, so a packet
  // that activates several queries at the ingress edge hauls a small header
  // stack hop to hop (each header is 12 wire bytes on every link).
  std::vector<SpHeader> sps;
  bool first_hop = true;
  for (int node : sw_path) {
    ++st.hops;
    tc.hops.add();
    auto& sw = *switches_.at(node);
    if (first_hop) {
      // Ingress edge: one pass dispatches slice 0 of every activated query.
      const auto out = sw.process(pkt, std::nullopt, /*at_ingress_edge=*/true);
      if (out.sp_out) {
        slice_traversals(0).add();
        sps.push_back(*out.sp_out);
      }
      for (const SpHeader& sp : out.extra_sp_outs) {
        slice_traversals(0).add();
        sps.push_back(sp);
      }
      first_hop = false;
    } else {
      // Downstream hop: resume each carried execution independently — the
      // PHV has only two metadata sets, so concurrent resumptions cannot
      // share a pipeline pass.  Headers this switch hosts no slice for are
      // carried through untouched.
      if (sps.empty()) {
        // No executions in flight: an empty pass still advances the
        // switch's window epoch off the packet timestamp.
        sw.process(pkt, std::nullopt, /*at_ingress_edge=*/false);
      }
      std::vector<SpHeader> carried;
      for (const SpHeader& sp : sps) {
        // The snapshot crosses the link as 12 wire bytes; encode/decode at
        // each hop exercises the real SP codec end to end.
        const auto wire = sp_encode(sp);
        const auto sp_in = sp_decode(wire.data(), wire.size());
        const auto out = sw.process(pkt, sp_in, /*at_ingress_edge=*/false);
        if (out.sp_consumed) {
          // This hop hosted and ran the slice the header addressed.
          slice_traversals(sp_in->next_slice).add();
          if (out.sp_out) carried.push_back(*out.sp_out);
          // else: final slice ran (or the query stopped itself).
        } else {
          carried.push_back(sp);  // no successor slice here; keep carrying
        }
      }
      sps = std::move(carried);
    }
    const std::size_t sp_bytes = kSpHeaderBytes * sps.size();
    if (sp_bytes) {
      st.sp_link_bytes += sp_bytes;
      sp_link_bytes_ += sp_bytes;
      tc.sp_bytes.add(sp_bytes);
    }
    payload_link_bytes_ += pkt.wire_len;
  }
  st.delivered = true;
  for (const SpHeader& sp : sps) {
    // Egress with an unfinished query: switches strip the SP header before
    // the packet reaches end hosts; the snapshot is mirrored to software.
    st.deferred = true;
    tc.deferred.add();
    if (deferred_) deferred_(pkt, sp);
  }
  return st;
}

}  // namespace newton
