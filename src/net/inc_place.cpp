#include "net/inc_place.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace newton {

IncrementalPlacer::IncrementalPlacer(const Topology* t,
                                     std::vector<int> ingress_edges,
                                     std::size_t num_slices)
    : t_(t),
      ingress_(std::move(ingress_edges)),
      ingress_set_(ingress_.begin(), ingress_.end()),
      num_slices_(num_slices) {
  if (num_slices_ > kMaxSlices)
    throw std::invalid_argument("IncrementalPlacer: query slices exceed " +
                                std::to_string(kMaxSlices));
  full_mask_ = num_slices_ == 0
                   ? 0
                   : (num_slices_ == kMaxSlices
                          ? ~uint64_t{0}
                          : ((uint64_t{1} << num_slices_) - 1));
  mask_.assign(t_->nodes.size(), 0);
  recompute();
}

uint64_t IncrementalPlacer::eval(int s) const {
  if (!t_->is_switch(s) || !t_->node_up(s)) return 0;
  uint64_t m = ingress_set_.contains(s) ? 1 : 0;
  for (int n : t_->neighbors(s)) {
    if (!t_->is_switch(n)) continue;
    m |= mask_[static_cast<std::size_t>(n)] << 1;
  }
  return m & full_mask_;
}

void IncrementalPlacer::relax(std::vector<int> seeds) {
  // Chaotic iteration over the fixpoint equation.  Correctness does not
  // depend on evaluation order (the equation is stratified by bit index);
  // a FIFO worklist keeps the walk breadth-first so each switch is
  // typically evaluated O(1) times per event.
  std::deque<int> work(seeds.begin(), seeds.end());
  std::vector<char> queued(mask_.size(), 0);
  std::vector<char> visited(mask_.size(), 0);
  std::vector<char> moved(mask_.size(), 0);
  for (int s : work) queued[static_cast<std::size_t>(s)] = 1;
  std::size_t scope = 0;
  while (!work.empty()) {
    const int s = work.front();
    work.pop_front();
    const auto si = static_cast<std::size_t>(s);
    queued[si] = 0;
    if (!visited[si]) {
      visited[si] = 1;
      ++scope;
    }
    const uint64_t v = eval(s);
    if (v == mask_[si]) continue;
    mask_[si] = v;
    moved[si] = 1;
    // Only nodes that read mask_[s] — live switch neighbors — can move.
    for (int n : t_->neighbors(s)) {
      if (!t_->is_switch(n)) continue;
      const auto ni = static_cast<std::size_t>(n);
      if (!queued[ni]) {
        queued[ni] = 1;
        work.push_back(n);
      }
    }
  }
  last_scope_ = scope;
  changed_.clear();
  for (std::size_t i = 0; i < moved.size(); ++i)
    if (moved[i]) changed_.push_back(static_cast<int>(i));
}

void IncrementalPlacer::recompute() {
  std::vector<int> all;
  for (std::size_t i = 0; i < mask_.size(); ++i)
    if (t_->is_switch(static_cast<int>(i))) {
      mask_[i] = 0;
      all.push_back(static_cast<int>(i));
    }
  relax(std::move(all));
}

void IncrementalPlacer::on_link_event(int a, int b) {
  std::vector<int> seeds;
  for (int s : {a, b})
    if (s >= 0 && static_cast<std::size_t>(s) < mask_.size() &&
        t_->is_switch(s))
      seeds.push_back(s);
  relax(std::move(seeds));
}

void IncrementalPlacer::on_switch_event(int n) {
  if (n < 0 || static_cast<std::size_t>(n) >= mask_.size()) {
    changed_.clear();
    last_scope_ = 0;
    return;
  }
  // Raw adjacency, not live neighbors: when `n` just died its links are
  // down, but the neighbors' old masks may still carry contributions that
  // flowed through `n` and must be re-evaluated.
  std::vector<int> seeds;
  if (t_->is_switch(n)) seeds.push_back(n);
  for (int m : t_->adj.at(static_cast<std::size_t>(n)))
    if (t_->is_switch(m)) seeds.push_back(m);
  relax(std::move(seeds));
}

Placement IncrementalPlacer::placement() const {
  Placement p;
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    uint64_t m = mask_[i];
    if (m == 0) continue;
    auto& slot = p.assignment[static_cast<int>(i)];
    for (std::size_t d = 0; m != 0; ++d, m >>= 1)
      if (m & 1) slot.push_back(d);
  }
  return p;
}

std::vector<std::size_t> IncrementalPlacer::slices_at(int s) const {
  std::vector<std::size_t> out;
  if (s < 0 || static_cast<std::size_t>(s) >= mask_.size()) return out;
  uint64_t m = mask_[static_cast<std::size_t>(s)];
  for (std::size_t d = 0; m != 0; ++d, m >>= 1)
    if (m & 1) out.push_back(d);
  return out;
}

}  // namespace newton
