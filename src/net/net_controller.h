// Network-wide Newton controller (§5): compiles a query, slices it for the
// per-switch stage budget (CQE), resolves register offsets centrally so all
// slice replicas address identical state, places slices with Algorithm 2,
// and installs the rules.  Also provides the sole-execution baseline
// (the full query independently on every switch) that Fig. 13 compares
// against.
//
// Installs are transactional: each switch's rule batch is retried with
// (modeled) exponential backoff when the control channel flakes, and a
// placement that cannot complete rolls back every slice already installed —
// including the centrally allocated register ranges — so a query is never
// half-placed.  When a switch dies, on_switch_failed() re-runs Algorithm 2
// on the surviving topology and issues only the delta installs/withdrawals,
// marking the deployment degraded until coverage is whole again
// (docs/fault.md).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/cqe.h"
#include "fault/install_faults.h"
#include "net/inc_place.h"
#include "net/network.h"
#include "net/placement.h"

namespace newton {

// How Algorithm 2 re-placement reacts to topology churn:
//   Incremental — per-deployment IncrementalPlacer relaxes only the
//     affected subtree (docs/fleet.md); the default.
//   Scratch — full `place_resilient` recompute on every event; the
//     recompute-everything baseline `bench_fleet` compares against, also
//     selected by the NEWTON_NO_INC_PLACE kill switch.
// Both modes issue byte-identical install/withdraw deltas (proven by the
// difftest `place` axis).
enum class PlacementMode : uint8_t { Incremental, Scratch };

// Retry-with-exponential-backoff policy for one switch's rule batch.  The
// backoff is modeled (added to the deployment's control latency), not slept.
// docs/admission.md draws the full retry/backoff state machine.
struct RetryPolicy {
  std::size_t max_attempts = 4;  // first try + 3 retries, per switch
  double base_backoff_ms = 2.0;  // doubles per retry...
  double max_backoff_ms = 64.0;  // ...up to this cap
  // Deterministic jitter: each backoff is scaled by a factor drawn from
  // [1 - jitter_frac, 1 + jitter_frac], keyed on (switch, attempt, uid) —
  // synchronized retry herds de-correlate while runs stay byte-reproducible.
  double jitter_frac = 0.5;
  // Modeled cost of one timed-out attempt (how long the controller waits
  // before declaring the batch lost), charged per failed attempt on top of
  // the backoff.
  double attempt_timeout_ms = 20.0;
  // Whole-deployment retry budget: once one deploy has burned this many
  // retries across all its switches, the next failure is terminal
  // (FAILED_PERMANENT) even if that switch has per-attempt headroom — a
  // flapping switch can bound-delay an install but never wedge the
  // controller in a retry loop.
  std::size_t retry_budget = 24;
};

// Terminal outcome of an install whose retries were exhausted: the whole
// placement was rolled back (zero residue) and the controller moved on.
struct InstallFailure {
  std::string query;
  int sw_node = -1;             // the switch whose batch kept failing
  std::size_t attempts = 0;     // attempts burned on that switch
  std::size_t retries_charged = 0;  // deployment-wide retries burned
  std::string reason;
};

class PermanentInstallError : public std::runtime_error {
 public:
  explicit PermanentInstallError(InstallFailure f)
      : std::runtime_error("FAILED_PERMANENT: install of '" + f.query +
                           "' on switch " + std::to_string(f.sw_node) +
                           " after " + std::to_string(f.attempts) +
                           " attempts: " + f.reason),
        failure_(std::move(f)) {}
  const InstallFailure& failure() const { return failure_; }

 private:
  InstallFailure failure_;
};

class NetworkController {
 public:
  explicit NetworkController(Network& net, Analyzer* analyzer = nullptr)
      : net_(net), analyzer_(analyzer) {
    for (std::size_t i = 0; i < net.stages_per_switch(); ++i)
      central_alloc_.emplace_back(kStateBankRegisters);
  }

  NetworkController(Network& net, Analyzer* analyzer,
                    std::size_t bank_registers)
      : net_(net), analyzer_(analyzer) {
    for (std::size_t i = 0; i < net.stages_per_switch(); ++i)
      central_alloc_.emplace_back(bank_registers);
  }

  struct Deployment {
    std::string query;
    uint16_t uid = 0;
    std::vector<QuerySlice> slices;
    Placement placement;
    std::vector<int> ingress_edges;  // seeds for re-placement on failover
    double total_latency_ms = 0;
    std::size_t total_rule_ops = 0;
    std::map<int, std::vector<uint64_t>> handles;  // switch -> install handles
    // Resilient deployments: (switch, slice) -> handle, so failover can
    // withdraw individual slices.  Empty for sole/path deployments.
    std::map<int, std::map<std::size_t, uint64_t>> by_slice;
    // Centrally allocated (stage, offset) register ranges — freed on
    // withdraw or rollback.
    std::vector<std::pair<std::size_t, std::size_t>> central_allocs;
    // Handles stranded on dead switches; cleaned up if the switch returns.
    std::map<int, std::vector<uint64_t>> orphaned;
    // True while coverage is partial (some switch down, or stale rules
    // stranded): reports may under-count until recovery completes.
    bool degraded = false;
    // False for deploy_path/deploy_sole — those are not re-placed on
    // failure (the control arm must stay naive).
    bool resilient = true;
    // Retries burned installing this deployment, against the policy's
    // whole-deployment retry_budget.
    std::size_t retries_used = 0;
    // (switch, slice) pairs the current placement wants installed but whose
    // delta install keeps failing — retried on every later reconciliation
    // until healed or no longer placed.
    std::set<std::pair<int, std::size_t>> install_holes;
    // (switch, slice) pairs still installed although the current placement
    // no longer requires them: link churn shrinks reachability, but
    // withdrawing a live replica would destroy its accumulated sketch
    // state mid-window, so link events are grow-only and the stale replica
    // is only swept at the next switch-death/restore reconciliation
    // (matching what the scratch path has always done).
    std::set<std::pair<int, std::size_t>> stale_extras;
  };

  // Running totals of the fault machinery (mirrored into telemetry).
  struct FaultStats {
    uint64_t install_retries = 0;   // per-switch batch retries after a flake
    uint64_t rollbacks = 0;         // whole-placement aborts
    uint64_t failovers = 0;         // switch-death reconciliations
    uint64_t delta_installs = 0;    // slices added by a reconcile
    uint64_t delta_withdrawals = 0; // slices removed by a reconcile
    uint64_t failed_permanent = 0;  // installs that hit FAILED_PERMANENT
    // Re-placement accounting, per (churn event, resilient deployment):
    // `scope` counts switches the placer re-evaluated (incremental: the
    // relaxed subtree; scratch: every live switch), `changed` counts
    // switches whose assignment actually moved (incremental mode only —
    // the scratch baseline does not diff, it reinstalls the world).
    uint64_t replace_events = 0;
    uint64_t replace_scope_switches = 0;
    uint64_t replace_changed_switches = 0;
    uint64_t last_replace_scope = 0;
    uint64_t last_replace_changed = 0;
  };

  // Resilient CQE deployment across all possible paths from the monitored
  // traffic's ingress edge switches (defaults to every edge switch).
  const Deployment& deploy(const Query& q, CompileOptions opts = {},
                           std::vector<int> ingress_edges = {});

  // Naive shortest-path-only deployment: slice i on the i-th switch of
  // `sw_path` only.  The control baseline of the fault-injection tests — a
  // reroute off the path loses the downstream slices.
  const Deployment& deploy_path(const Query& q, const std::vector<int>& sw_path,
                                CompileOptions opts = {});

  // Sole-execution baseline: every switch runs the full query.
  const Deployment& deploy_sole(const Query& q, CompileOptions opts = {});

  void withdraw(const std::string& name);

  // Failure notifications (the FaultInjector calls these after flipping the
  // topology state).  on_switch_failed orphans the dead switch's rules and
  // re-places every resilient deployment on the surviving topology;
  // on_switch_restored clears stale rules from the returning switch and
  // re-places to restore full coverage.
  void on_switch_failed(int sw_node);
  void on_switch_restored(int sw_node);

  // Link churn notifications (again from the FaultInjector, after the
  // topology flip).  Re-placement under link churn is GROW-ONLY: missing
  // replicas on newly reachable switches are installed (coverage healing),
  // but replicas the shrunken reachability no longer requires stay put —
  // withdrawing them would destroy live sketch state; they are tracked in
  // Deployment::stale_extras and swept at the next switch event.
  void on_link_failed(int a, int b);
  void on_link_restored(int a, int b);

  // Must be chosen before the first deploy (a mode flip does not retrofit
  // existing deployments).  Defaults to Incremental, or Scratch when the
  // NEWTON_NO_INC_PLACE environment variable is set.
  void set_placement_mode(PlacementMode m) { mode_ = m; }
  PlacementMode placement_mode() const { return mode_; }
  // Equivalence oracle: after every incremental re-placement, cross-check
  // the placer's masks against a scratch `place_resilient` and throw
  // std::logic_error on any divergence.  Used by tests, the difftest
  // `place` axis, and `bench_fleet --verify`.
  void set_verify_placement(bool on) { verify_placement_ = on; }

  // Fault model consulted before every per-switch install attempt (null =
  // no injected install faults).  Not owned.
  void set_install_faults(InstallFaultModel* m) { install_faults_ = m; }
  void set_retry_policy(RetryPolicy p) { retry_ = p; }

  const Deployment* deployment(const std::string& name) const;
  const std::vector<QuerySlice>* slices_of(const std::string& name) const;
  const FaultStats& fault_stats() const { return fault_stats_; }
  // The most recent FAILED_PERMANENT install, for operator tooling; empty
  // until one happens.
  const std::optional<InstallFailure>& last_install_failure() const {
    return last_failure_;
  }
  // Any deployment currently running with partial coverage?
  bool any_degraded() const;

 private:
  NewtonSwitch::InstallResult install_with_retry(int sw_node,
                                                 const QuerySlice& slice,
                                                 Deployment& d);
  void install_one_slice(Deployment& d, int sw_node, std::size_t si);
  void remove_slice_handle(Deployment& d, int sw_node, std::size_t si);
  void rollback(Deployment& d);
  void reconcile(Deployment& d, bool allow_withdraw);
  void reconcile_incremental(Deployment& d, IncrementalPlacer& p,
                             bool allow_withdraw);
  void handle_link_event(int a, int b);
  void replace_for_event(Deployment& d, bool allow_withdraw,
                         bool switch_event, int a, int b);
  void verify_placer(const Deployment& d, const IncrementalPlacer& p) const;
  void note_replacement(std::size_t scope, std::size_t changed);
  void refresh_degraded(Deployment& d);
  void free_central(Deployment& d);

  Network& net_;
  Analyzer* analyzer_;
  InstallFaultModel* install_faults_ = nullptr;
  RetryPolicy retry_;
  std::vector<RangeAllocator> central_alloc_;
  std::map<std::string, Deployment> deployments_;
  // Per-resilient-deployment incremental placer state (Incremental mode
  // only; queries slicing past IncrementalPlacer::kMaxSlices fall back to
  // scratch and have no entry here).
  std::map<std::string, IncrementalPlacer> placers_;
  static PlacementMode default_placement_mode();  // env kill switch
  PlacementMode mode_ = default_placement_mode();
  bool verify_placement_ = false;
  FaultStats fault_stats_;
  std::optional<InstallFailure> last_failure_;
  uint16_t next_uid_ = 1;
};

}  // namespace newton
