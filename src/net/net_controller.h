// Network-wide Newton controller (§5): compiles a query, slices it for the
// per-switch stage budget (CQE), resolves register offsets centrally so all
// slice replicas address identical state, places slices with Algorithm 2,
// and installs the rules.  Also provides the sole-execution baseline
// (the full query independently on every switch) that Fig. 13 compares
// against.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/cqe.h"
#include "net/network.h"
#include "net/placement.h"

namespace newton {

class NetworkController {
 public:
  explicit NetworkController(Network& net, Analyzer* analyzer = nullptr)
      : net_(net), analyzer_(analyzer) {
    for (std::size_t i = 0; i < net.stages_per_switch(); ++i)
      central_alloc_.emplace_back(kStateBankRegisters);
  }

  NetworkController(Network& net, Analyzer* analyzer,
                    std::size_t bank_registers)
      : net_(net), analyzer_(analyzer) {
    for (std::size_t i = 0; i < net.stages_per_switch(); ++i)
      central_alloc_.emplace_back(bank_registers);
  }

  struct Deployment {
    std::string query;
    uint16_t uid = 0;
    std::vector<QuerySlice> slices;
    Placement placement;
    double total_latency_ms = 0;
    std::size_t total_rule_ops = 0;
    std::map<int, std::vector<uint64_t>> handles;  // switch -> install handles
  };

  // Resilient CQE deployment across all possible paths from the monitored
  // traffic's ingress edge switches (defaults to every edge switch).
  const Deployment& deploy(const Query& q, CompileOptions opts = {},
                           std::vector<int> ingress_edges = {});

  // Sole-execution baseline: every switch runs the full query.
  const Deployment& deploy_sole(const Query& q, CompileOptions opts = {});

  void withdraw(const std::string& name);

  const Deployment* deployment(const std::string& name) const;
  const std::vector<QuerySlice>* slices_of(const std::string& name) const;

 private:
  Network& net_;
  Analyzer* analyzer_;
  std::vector<RangeAllocator> central_alloc_;
  std::map<std::string, Deployment> deployments_;
  uint16_t next_uid_ = 1;
};

}  // namespace newton
