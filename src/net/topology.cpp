#include "net/topology.h"

#include <stdexcept>

namespace newton {

int Topology::add_node(NodeType type, std::string name) {
  nodes.push_back({type, std::move(name)});
  adj.emplace_back();
  return static_cast<int>(nodes.size()) - 1;
}

void Topology::add_link(int a, int b) {
  if (a == b) throw std::invalid_argument("add_link: self loop");
  adj.at(a).insert(b);
  adj.at(b).insert(a);
}

void Topology::fail_link(int a, int b) {
  failed.insert({std::min(a, b), std::max(a, b)});
}

void Topology::restore_link(int a, int b) {
  failed.erase({std::min(a, b), std::max(a, b)});
}

bool Topology::link_up(int a, int b) const {
  return adj.at(a).contains(b) && node_up(a) && node_up(b) &&
         !failed.contains({std::min(a, b), std::max(a, b)});
}

void Topology::fail_node(int n) {
  if (!is_switch(n))
    throw std::invalid_argument("fail_node: only switches can fail");
  failed_nodes.insert(n);
}

void Topology::restore_node(int n) { failed_nodes.erase(n); }

std::vector<int> Topology::neighbors(int n) const {
  std::vector<int> out;
  for (int m : adj.at(n))
    if (link_up(n, m)) out.push_back(m);
  return out;
}

std::vector<int> Topology::switches() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].type == NodeType::Switch) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Topology::hosts() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].type == NodeType::Host) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Topology::edge_switches() const {
  std::vector<int> out;
  for (int s : switches()) {
    if (!node_up(s)) continue;
    for (int n : adj[s]) {
      if (nodes[n].type == NodeType::Host) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

Topology make_fat_tree(int k) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("make_fat_tree: k must be even and >= 2");
  Topology t;
  const int half = k / 2;
  // Core switches.
  std::vector<int> core;
  for (int i = 0; i < half * half; ++i)
    core.push_back(t.add_node(NodeType::Switch, "core" + std::to_string(i)));
  // Pods.
  for (int p = 0; p < k; ++p) {
    std::vector<int> aggs, edges;
    for (int a = 0; a < half; ++a)
      aggs.push_back(t.add_node(
          NodeType::Switch, "agg" + std::to_string(p) + "_" + std::to_string(a)));
    for (int e = 0; e < half; ++e)
      edges.push_back(t.add_node(
          NodeType::Switch, "edge" + std::to_string(p) + "_" + std::to_string(e)));
    for (int a = 0; a < half; ++a)
      for (int e = 0; e < half; ++e) t.add_link(aggs[a], edges[e]);
    for (int a = 0; a < half; ++a)
      for (int c = 0; c < half; ++c) t.add_link(aggs[a], core[a * half + c]);
    for (int e = 0; e < half; ++e)
      for (int h = 0; h < half; ++h)
        t.add_link(edges[e],
                   t.add_node(NodeType::Host, "h" + std::to_string(p) + "_" +
                                                  std::to_string(e) + "_" +
                                                  std::to_string(h)));
  }
  return t;
}

Topology make_isp_backbone() {
  Topology t;
  const std::vector<std::string> pops{
      "Seattle",   "Portland",  "Sacramento", "SanFrancisco", "SanJose",
      "LosAngeles","SanDiego",  "SaltLake",   "Phoenix",      "Denver",
      "Albuquerque","Dallas",   "Houston",    "SanAntonio",   "KansasCity",
      "StLouis",   "Chicago",   "Minneapolis","Indianapolis", "Nashville",
      "Atlanta",   "Orlando",   "Miami",      "WashingtonDC", "Philadelphia",
      "NewYork",   "Boston"};
  std::vector<int> id;
  for (const auto& name : pops) id.push_back(t.add_node(NodeType::Switch, name));
  auto link = [&](int a, int b) { t.add_link(id[a], id[b]); };
  // West coast chain + inland.
  link(0, 1); link(1, 2); link(2, 3); link(3, 4); link(4, 5); link(5, 6);
  link(0, 7); link(2, 7); link(5, 8); link(6, 8);
  // Mountain / central.
  link(7, 9); link(9, 14); link(8, 10); link(10, 11); link(9, 10);
  link(11, 12); link(12, 13); link(11, 13); link(11, 14); link(14, 15);
  link(15, 16); link(16, 17); link(0, 17); link(16, 18); link(18, 19);
  link(19, 20); link(11, 20);
  // South-east + east coast.
  link(20, 21); link(21, 22); link(12, 22); link(20, 23); link(23, 24);
  link(24, 25); link(25, 26); link(16, 25); link(15, 18);
  // One stub host per PoP.
  for (std::size_t i = 0; i < pops.size(); ++i) {
    const int h = t.add_node(NodeType::Host, pops[i] + "_host");
    t.add_link(id[i], h);
  }
  return t;
}

Topology make_line(int n_switches) {
  if (n_switches < 1) throw std::invalid_argument("make_line: n >= 1");
  Topology t;
  std::vector<int> sw;
  for (int i = 0; i < n_switches; ++i)
    sw.push_back(t.add_node(NodeType::Switch, "s" + std::to_string(i)));
  for (int i = 0; i + 1 < n_switches; ++i) t.add_link(sw[i], sw[i + 1]);
  const int h1 = t.add_node(NodeType::Host, "h1");
  const int h2 = t.add_node(NodeType::Host, "h2");
  t.add_link(h1, sw.front());
  t.add_link(sw.back(), h2);
  return t;
}

}  // namespace newton
