// k-ary report aggregation tree (ROADMAP item 4).
//
// The central collector model has every switch mirror its reports straight
// to the analyzer: collection fan-in equals the switch count, and resilient
// replica deployments multiply the volume further (every replica of a slice
// re-reports the same key).  AggregationTree interposes as the fabric's
// ReportSink: each switch feeds a leaf, internal nodes coalesce up to
// `fanin` children, and per-edge partial merges combine records that carry
// the same (query, branch, window, operation keys) — the root forwards the
// survivors downstream.  Collection cost then scales with tree depth
// (log_fanin of the switch count), not with the fabric size.
//
// Merging follows `RegisterArray::merge_from` semantics: the duplicate
// records' global results combine under the query's MergeOp (Add for
// count-min banks, Or for bloom banks, Max otherwise — see
// `merge_op_for_slices`), the representative keeps the smallest reporting
// switch id and the latest timestamp.  Because the analyzer derives its
// detections from per-window key sets, and a merge never crosses a window
// or drops a key, the analyzer-visible detections are byte-identical to
// central collection (proven in test_fleet).  Deferred records (software
// continuations of a stranded CQE chain) pass through unmerged.
//
// Attribution: switch-local qids differ across replicas of the same slice,
// so cross-switch merging resolves the logical owner through
// `Analyzer::owner_of`.  Without an attribution analyzer, merging degrades
// to per-switch coalescing (still bounded fan-in, weaker compression).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/cqe.h"
#include "core/report.h"
#include "dataplane/register_array.h"
#include "net/topology.h"

namespace newton {

// The MergeOp under which replicas of a query's final aggregate combine,
// derived from its slices' non-bypass S-module SALU ops: all-Add -> Add,
// all-Or -> Or, anything else (or no stateful module) -> Max.
MergeOp merge_op_for_slices(const std::vector<QuerySlice>& slices);

class AggregationTree : public ReportSink {
 public:
  struct Options {
    std::size_t fanin = 16;              // max children per internal node
    uint64_t window_ns = 100'000'000;    // must match the switches' window
    const Analyzer* attribution = nullptr;  // owner lookup for merging
  };

  struct Stats {
    std::size_t depth = 0;          // levels from leaf to root (>= 1)
    std::size_t nodes = 0;          // leaves + internal nodes + root
    std::size_t max_fanin = 0;      // widest node actually built
    uint64_t reports_in = 0;        // records entering at the leaves
    uint64_t link_records = 0;      // records crossing any tree edge
    uint64_t merged_away = 0;       // records absorbed by a partial merge
    uint64_t root_records = 0;      // records the root forwarded downstream
    uint64_t passthrough = 0;       // deferred records forwarded unmerged
  };

  // `downstream` (borrowed, may be the same Analyzer used for attribution)
  // receives the root's output on flush().
  AggregationTree(const Topology& t, ReportSink* downstream, Options opt);

  void report(const ReportRecord& r) override;

  // Propagate every buffered record leaf-to-root, merging per edge, and
  // emit the survivors downstream.  Call at window boundaries (or at end
  // of replay); records of several windows buffer safely between calls —
  // the merge key carries the window index.
  void flush();

  // Override the MergeOp for one query's records (default Max).
  void set_merge_op(const std::string& query, MergeOp op);

  const Stats& stats() const { return stats_; }

 private:
  struct MergeKey {
    std::string query;   // owner query, or "" when unattributed
    uint64_t branch;     // owner branch, or (switch_id << 16) | qid
    uint64_t window;
    uint8_t next_slice;
    std::array<uint32_t, kNumFields> keys;
    bool operator<(const MergeKey& o) const {
      return std::tie(query, branch, window, next_slice, keys) <
             std::tie(o.query, o.branch, o.window, o.next_slice, o.keys);
    }
  };

  struct Node {
    int parent = -1;
    std::size_t children = 0;
    std::map<MergeKey, ReportRecord> merged;
    std::vector<ReportRecord> passthrough;  // deferred records
  };

  MergeOp op_for(const MergeKey& k) const;
  void absorb(Node& parent, Node& child);

  Options opt_;
  ReportSink* downstream_;
  std::map<uint32_t, std::size_t> leaf_of_;   // switch id -> leaf node
  std::vector<std::size_t> level_start_;      // node index where level begins
  std::vector<Node> nodes_;                   // leaves first, root last
  std::map<std::string, MergeOp> merge_ops_;
  Stats stats_;
};

}  // namespace newton
