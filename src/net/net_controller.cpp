#include "net/net_controller.h"

#include <stdexcept>

namespace newton {

const NetworkController::Deployment& NetworkController::deploy(
    const Query& q, CompileOptions opts, std::vector<int> ingress_edges) {
  if (deployments_.contains(q.name))
    throw std::invalid_argument("deploy: already deployed: " + q.name);

  CompiledQuery cq = compile_query(q, opts);
  std::vector<QuerySlice> slices =
      slice_query(cq, net_.stages_per_switch());
  resolve_slice_offsets(slices, central_alloc_);

  if (ingress_edges.empty()) ingress_edges = net_.topo().edge_switches();
  Placement placement =
      place_resilient(net_.topo(), ingress_edges, slices.size());

  Deployment d;
  d.query = q.name;
  d.uid = next_uid_++;
  d.slices = slices;
  d.placement = placement;

  for (const auto& [sw_node, slice_idxs] : placement.assignment) {
    if (!net_.has_switch(sw_node)) continue;
    for (std::size_t si : slice_idxs) {
      const auto res = net_.sw(sw_node).install_slice(slices[si], d.uid,
                                                      /*resolve=*/false);
      d.handles[sw_node].push_back(res.handle);
      d.total_latency_ms = std::max(d.total_latency_ms, res.latency_ms);
      d.total_rule_ops += res.rule_ops;
      if (analyzer_)
        for (uint16_t qid : res.qids)
          analyzer_->register_qid(static_cast<uint32_t>(sw_node), qid, q.name,
                                  0);
    }
  }
  return deployments_[q.name] = std::move(d);
}

const NetworkController::Deployment& NetworkController::deploy_sole(
    const Query& q, CompileOptions opts) {
  if (deployments_.contains(q.name))
    throw std::invalid_argument("deploy_sole: already deployed: " + q.name);
  CompiledQuery cq = compile_query(q, opts);

  Deployment d;
  d.query = q.name;
  d.uid = next_uid_++;
  for (int sw_node : net_.topo().switches()) {
    const auto res = net_.sw(sw_node).install(cq);
    d.handles[sw_node].push_back(res.handle);
    d.total_latency_ms = std::max(d.total_latency_ms, res.latency_ms);
    d.total_rule_ops += res.rule_ops;
    if (analyzer_)
      for (std::size_t bi = 0; bi < res.qids.size(); ++bi)
        analyzer_->register_qid(static_cast<uint32_t>(sw_node), res.qids[bi],
                                q.name, bi);
  }
  return deployments_[q.name] = std::move(d);
}

void NetworkController::withdraw(const std::string& name) {
  auto it = deployments_.find(name);
  if (it == deployments_.end())
    throw std::invalid_argument("withdraw: unknown deployment: " + name);
  for (const auto& [sw_node, handles] : it->second.handles)
    for (uint64_t h : handles) net_.sw(sw_node).remove(h);
  deployments_.erase(it);
}

const NetworkController::Deployment* NetworkController::deployment(
    const std::string& name) const {
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? nullptr : &it->second;
}

const std::vector<QuerySlice>* NetworkController::slices_of(
    const std::string& name) const {
  const Deployment* d = deployment(name);
  return d == nullptr ? nullptr : &d->slices;
}

}  // namespace newton
