#include "net/net_controller.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.h"

namespace newton {

namespace {

struct FaultCounters {
  telemetry::Counter& retries;
  telemetry::Counter& rollbacks;
  telemetry::Counter& failovers;
  telemetry::Counter& delta_installs;
  telemetry::Counter& delta_withdrawals;
  telemetry::Counter& failed_permanent;
  telemetry::Counter& replace_events;
  telemetry::Counter& replace_scope;
  telemetry::Counter& replace_changed;
  telemetry::Gauge& degraded;

  static FaultCounters& get() {
    auto& reg = telemetry::Registry::global();
    static FaultCounters c{
        reg.counter("newton_net_install_retries_total",
                    "Per-switch rule-batch retries after a transient "
                    "control-channel failure"),
        reg.counter("newton_net_install_rollbacks_total",
                    "Whole-placement installs aborted and rolled back"),
        reg.counter("newton_net_failovers_total",
                    "Switch-death reconciliations (re-placement on the "
                    "surviving topology)"),
        reg.counter("newton_net_delta_installs_total",
                    "Slices installed by failover reconciliation"),
        reg.counter("newton_net_delta_withdrawals_total",
                    "Slices withdrawn by failover reconciliation"),
        reg.counter("newton_net_installs_failed_permanent_total",
                    "Installs that exhausted their retry budget and were "
                    "terminally rolled back (FAILED_PERMANENT)"),
        reg.counter("newton_place_events_total",
                    "Re-placement episodes (one per churn event per "
                    "resilient deployment)"),
        reg.counter("newton_place_scope_switches_total",
                    "Switches re-evaluated by re-placement (incremental: "
                    "the relaxed subtree; scratch: every live switch)"),
        reg.counter("newton_place_changed_switches_total",
                    "Switches whose slice assignment actually moved "
                    "(incremental mode)"),
        reg.gauge("newton_net_degraded_deployments",
                  "Deployments currently running with partial coverage")};
    return c;
  }
};

}  // namespace

bool NetworkController::any_degraded() const {
  return std::any_of(deployments_.begin(), deployments_.end(),
                     [](const auto& kv) { return kv.second.degraded; });
}

namespace {

// Deterministic backoff jitter in [1 - frac, 1 + frac], keyed on the
// (switch, attempt, deployment) triple: retry herds de-correlate, but a
// replayed run charges byte-identical modeled latencies.
double jitter_factor(int sw_node, std::size_t attempt, uint16_t uid,
                     double frac) {
  uint64_t h = 1469598103934665603ull;
  for (const uint64_t w : {static_cast<uint64_t>(sw_node),
                           static_cast<uint64_t>(attempt),
                           static_cast<uint64_t>(uid)}) {
    h ^= w;
    h *= 1099511628211ull;
  }
  const double unit = static_cast<double>(h % 10'000) / 9'999.0;  // [0, 1]
  return 1.0 - frac + 2.0 * frac * unit;
}

}  // namespace

NewtonSwitch::InstallResult NetworkController::install_with_retry(
    int sw_node, const QuerySlice& slice, Deployment& d) {
  // Bounded-retry state machine (docs/admission.md): TRYING -> (flake) ->
  // BACKOFF -> TRYING ... until success, per-switch attempts exhausted, or
  // the deployment-wide retry budget runs dry — then FAILED_PERMANENT: the
  // caller rolls the whole placement back and the controller moves on.
  double backoff = retry_.base_backoff_ms;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (install_faults_ && install_faults_->should_fail(sw_node))
        throw std::runtime_error("install: switch " + std::to_string(sw_node) +
                                 " rejected the rule batch");
      return net_.sw(sw_node).install_slice(slice, d.uid, /*resolve=*/false);
    } catch (const std::exception& e) {
      // Every failed attempt costs the modeled per-attempt timeout (the
      // wait before declaring the batch lost).
      d.total_latency_ms += retry_.attempt_timeout_ms;
      if (attempt >= retry_.max_attempts ||
          d.retries_used >= retry_.retry_budget) {
        ++fault_stats_.failed_permanent;
        FaultCounters::get().failed_permanent.add();
        last_failure_ = {d.query, sw_node, attempt, d.retries_used, e.what()};
        throw PermanentInstallError(*last_failure_);
      }
      ++fault_stats_.install_retries;
      ++d.retries_used;
      FaultCounters::get().retries.add();
      // Modeled jittered exponential backoff: charged to the deployment's
      // control latency rather than slept, keeping tests instant.
      d.total_latency_ms +=
          std::min(backoff, retry_.max_backoff_ms) *
          jitter_factor(sw_node, attempt, d.uid, retry_.jitter_frac);
      backoff *= 2;
    }
  }
}

void NetworkController::install_one_slice(Deployment& d, int sw_node,
                                          std::size_t si) {
  const auto res = install_with_retry(sw_node, d.slices[si], d);
  d.handles[sw_node].push_back(res.handle);
  d.by_slice[sw_node][si] = res.handle;
  d.total_latency_ms = std::max(d.total_latency_ms, res.latency_ms);
  d.total_rule_ops += res.rule_ops;
  if (analyzer_)
    for (uint16_t qid : res.qids)
      analyzer_->register_qid(static_cast<uint32_t>(sw_node), qid, d.query, 0);
}

void NetworkController::remove_slice_handle(Deployment& d, int sw_node,
                                            std::size_t si) {
  auto sw_it = d.by_slice.find(sw_node);
  if (sw_it == d.by_slice.end()) return;
  const auto h_it = sw_it->second.find(si);
  if (h_it == sw_it->second.end()) return;
  const uint64_t h = h_it->second;
  net_.sw(sw_node).remove(h);
  sw_it->second.erase(h_it);
  if (sw_it->second.empty()) d.by_slice.erase(sw_it);
  auto& hv = d.handles[sw_node];
  hv.erase(std::remove(hv.begin(), hv.end(), h), hv.end());
  if (hv.empty()) d.handles.erase(sw_node);
}

void NetworkController::free_central(Deployment& d) {
  for (const auto& [stage, offset] : d.central_allocs)
    central_alloc_.at(stage).free(offset);
  d.central_allocs.clear();
}

void NetworkController::rollback(Deployment& d) {
  // Abort phase of the two-phase install: withdraw every slice already
  // installed and release the central register ranges, leaving no trace.
  for (const auto& [sw_node, handles] : d.handles)
    for (uint64_t h : handles) net_.sw(sw_node).remove(h);
  d.handles.clear();
  d.by_slice.clear();
  free_central(d);
  ++fault_stats_.rollbacks;
  FaultCounters::get().rollbacks.add();
}

const NetworkController::Deployment& NetworkController::deploy(
    const Query& q, CompileOptions opts, std::vector<int> ingress_edges) {
  if (deployments_.contains(q.name))
    throw std::invalid_argument("deploy: already deployed: " + q.name);

  CompiledQuery cq = compile_query(q, opts);
  std::vector<QuerySlice> slices =
      slice_query(cq, net_.stages_per_switch());
  resolve_slice_offsets(slices, central_alloc_);

  if (ingress_edges.empty()) ingress_edges = net_.topo().edge_switches();
  std::optional<IncrementalPlacer> placer;
  Placement placement;
  if (mode_ == PlacementMode::Incremental &&
      slices.size() <= IncrementalPlacer::kMaxSlices) {
    placer.emplace(&net_.topo(), ingress_edges, slices.size());
    placement = placer->placement();
    if (verify_placement_ &&
        placement.assignment !=
            place_resilient(net_.topo(), ingress_edges, slices.size())
                .assignment)
      throw std::logic_error(
          "incremental placement diverged from the scratch oracle at "
          "deploy of '" +
          q.name + "'");
  } else {
    placement = place_resilient(net_.topo(), ingress_edges, slices.size());
  }

  Deployment d;
  d.query = q.name;
  d.uid = next_uid_++;
  d.slices = std::move(slices);
  d.placement = placement;
  d.ingress_edges = std::move(ingress_edges);
  for (const QuerySlice& sl : d.slices)
    for (const auto& b : sl.part.branches)
      for (const ModuleSpec& m : b.modules)
        if (m.type == ModuleType::S && !m.s.bypass && m.alloc_width > 0)
          d.central_allocs.push_back(
              {static_cast<std::size_t>(m.stage), m.alloc_offset});

  // Phase 1 (prepare): install every slice, retrying transient flakes.  Any
  // permanent failure aborts the whole placement.
  try {
    for (const auto& [sw_node, slice_idxs] : placement.assignment) {
      if (!net_.has_switch(sw_node) || !net_.topo().node_up(sw_node)) continue;
      for (std::size_t si : slice_idxs) install_one_slice(d, sw_node, si);
    }
  } catch (...) {
    rollback(d);
    throw;
  }
  // Phase 2 (commit): the placement is complete; publish it (and the
  // placer state that tracks it incrementally from here on).
  if (placer) placers_.insert_or_assign(q.name, std::move(*placer));
  return deployments_[q.name] = std::move(d);
}

const NetworkController::Deployment& NetworkController::deploy_path(
    const Query& q, const std::vector<int>& sw_path, CompileOptions opts) {
  if (deployments_.contains(q.name))
    throw std::invalid_argument("deploy_path: already deployed: " + q.name);

  CompiledQuery cq = compile_query(q, opts);
  std::vector<QuerySlice> slices =
      slice_query(cq, net_.stages_per_switch());
  resolve_slice_offsets(slices, central_alloc_);

  Deployment d;
  d.query = q.name;
  d.uid = next_uid_++;
  d.slices = std::move(slices);
  d.resilient = false;
  for (const QuerySlice& sl : d.slices)
    for (const auto& b : sl.part.branches)
      for (const ModuleSpec& m : b.modules)
        if (m.type == ModuleType::S && !m.s.bypass && m.alloc_width > 0)
          d.central_allocs.push_back(
              {static_cast<std::size_t>(m.stage), m.alloc_offset});

  try {
    d.placement = place_on_path(sw_path, d.slices.size());
    for (const auto& [sw_node, slice_idxs] : d.placement.assignment)
      for (std::size_t si : slice_idxs) install_one_slice(d, sw_node, si);
  } catch (...) {
    rollback(d);
    throw;
  }
  return deployments_[q.name] = std::move(d);
}

const NetworkController::Deployment& NetworkController::deploy_sole(
    const Query& q, CompileOptions opts) {
  if (deployments_.contains(q.name))
    throw std::invalid_argument("deploy_sole: already deployed: " + q.name);
  CompiledQuery cq = compile_query(q, opts);

  Deployment d;
  d.query = q.name;
  d.uid = next_uid_++;
  d.resilient = false;
  try {
    for (int sw_node : net_.topo().switches()) {
      if (!net_.topo().node_up(sw_node)) continue;
      if (install_faults_ && install_faults_->should_fail(sw_node))
        throw std::runtime_error("install: switch " +
                                 std::to_string(sw_node) +
                                 " rejected the rule batch");
      const auto res = net_.sw(sw_node).install(cq);
      d.handles[sw_node].push_back(res.handle);
      d.total_latency_ms = std::max(d.total_latency_ms, res.latency_ms);
      d.total_rule_ops += res.rule_ops;
      if (analyzer_)
        for (std::size_t bi = 0; bi < res.qids.size(); ++bi)
          analyzer_->register_qid(static_cast<uint32_t>(sw_node),
                                  res.qids[bi], q.name, bi);
    }
  } catch (...) {
    rollback(d);
    throw;
  }
  return deployments_[q.name] = std::move(d);
}

void NetworkController::withdraw(const std::string& name) {
  auto it = deployments_.find(name);
  if (it == deployments_.end())
    throw std::invalid_argument("withdraw: unknown deployment: " + name);
  for (const auto& [sw_node, handles] : it->second.handles)
    for (uint64_t h : handles) net_.sw(sw_node).remove(h);
  // Stranded rules on dead switches are cleaned too: withdrawing a query is
  // a management operation, and the stale handles must not fire if the
  // switch later returns.
  for (const auto& [sw_node, handles] : it->second.orphaned)
    for (uint64_t h : handles) net_.sw(sw_node).remove(h);
  free_central(it->second);
  placers_.erase(name);
  deployments_.erase(it);
  FaultCounters::get().degraded.set(static_cast<int64_t>(std::count_if(
      deployments_.begin(), deployments_.end(),
      [](const auto& kv) { return kv.second.degraded; })));
}

void NetworkController::refresh_degraded(Deployment& d) {
  // Coverage is partial while any switch is down, stale rules are stranded,
  // or (for resilient deployments) some live placed slice has no handle —
  // e.g. a delta install that keeps failing.
  bool missing = false;
  if (d.resilient) {
    for (const auto& [sw_node, slice_idxs] : d.placement.assignment) {
      if (!net_.has_switch(sw_node) || !net_.topo().node_up(sw_node)) continue;
      for (std::size_t si : slice_idxs) {
        const auto it = d.by_slice.find(sw_node);
        if (it == d.by_slice.end() || !it->second.contains(si)) missing = true;
      }
    }
  }
  d.degraded =
      !d.orphaned.empty() || !net_.topo().failed_nodes.empty() || missing;
  FaultCounters::get().degraded.set(static_cast<int64_t>(std::count_if(
      deployments_.begin(), deployments_.end(),
      [](const auto& kv) { return kv.second.degraded; })));
}

void NetworkController::reconcile(Deployment& d, bool allow_withdraw) {
  // Algorithm 2 from scratch on the surviving topology, then diff against
  // what is installed: only the delta touches switches.
  // Each reconciliation episode gets a fresh retry budget: a deployment
  // that went FAILED_PERMANENT during a churn storm must still be able to
  // heal once the fabric calms down.
  d.retries_used = 0;
  std::vector<int> ingress;
  for (int e : d.ingress_edges)
    if (net_.topo().node_up(e)) ingress.push_back(e);
  const Placement fresh =
      place_resilient(net_.topo(), ingress, d.slices.size());

  // Delta withdrawals: slices no longer needed on a live switch.  Link
  // events (allow_withdraw == false) only RECORD the staleness: the
  // replica's sketch state must survive a transient link flap, and the
  // next switch event sweeps whatever is still unplaced then.
  for (const auto& [sw_node, slice_idxs] : d.placement.assignment) {
    if (!net_.has_switch(sw_node) || !net_.topo().node_up(sw_node)) continue;
    for (std::size_t si : slice_idxs) {
      if (fresh.has(sw_node, si)) {
        d.stale_extras.erase({sw_node, si});
        continue;
      }
      if (!allow_withdraw) {
        d.stale_extras.insert({sw_node, si});
        continue;
      }
      remove_slice_handle(d, sw_node, si);
      d.stale_extras.erase({sw_node, si});
      d.install_holes.erase({sw_node, si});
      ++fault_stats_.delta_withdrawals;
      FaultCounters::get().delta_withdrawals.add();
    }
  }
  // Delta installs: slices the new placement adds (this also retries any
  // hole a previous reconciliation's failed install left behind).
  for (const auto& [sw_node, slice_idxs] : fresh.assignment) {
    if (!net_.has_switch(sw_node)) continue;
    for (std::size_t si : slice_idxs) {
      const auto it = d.by_slice.find(sw_node);
      if (it != d.by_slice.end() && it->second.contains(si)) {
        d.install_holes.erase({sw_node, si});
        continue;
      }
      try {
        install_one_slice(d, sw_node, si);
        d.install_holes.erase({sw_node, si});
        ++fault_stats_.delta_installs;
        FaultCounters::get().delta_installs.add();
      } catch (const std::exception&) {
        // Leave the hole: the deployment stays degraded, a later
        // reconciliation retries.
        d.install_holes.insert({sw_node, si});
      }
    }
  }
  if (allow_withdraw) {
    d.placement = fresh;
  } else {
    // Grow-only publish: the placement keeps the stale extras (they are
    // still installed) and gains whatever the fresh placement added.
    for (const auto& [sw_node, slice_idxs] : fresh.assignment) {
      auto& slot = d.placement.assignment[sw_node];
      for (std::size_t si : slice_idxs)
        if (std::find(slot.begin(), slot.end(), si) == slot.end())
          slot.push_back(si);
      std::sort(slot.begin(), slot.end());
    }
  }
}

void NetworkController::reconcile_incremental(Deployment& d,
                                              IncrementalPlacer& p,
                                              bool allow_withdraw) {
  // Same delta policy as the scratch `reconcile`, but only the switches
  // the placer's relaxation actually moved — plus any switch carrying an
  // unhealed install hole or (at switch events) a stale extra — are
  // examined.  Everything else is untouched by construction: an unchanged
  // mask means the fresh placement equals the published one there.
  d.retries_used = 0;
  std::set<int> targets(p.last_changed_switches().begin(),
                        p.last_changed_switches().end());
  for (const auto& [sw_node, si] : d.install_holes) targets.insert(sw_node);
  if (allow_withdraw)
    for (const auto& [sw_node, si] : d.stale_extras) targets.insert(sw_node);

  for (int sw_node : targets) {  // pass 1: withdrawals / staleness tracking
    if (!net_.has_switch(sw_node) || !net_.topo().node_up(sw_node)) continue;
    const auto it = d.placement.assignment.find(sw_node);
    if (it == d.placement.assignment.end()) continue;
    const std::vector<std::size_t> fresh = p.slices_at(sw_node);
    for (std::size_t si : it->second) {
      if (std::binary_search(fresh.begin(), fresh.end(), si)) {
        d.stale_extras.erase({sw_node, si});
        continue;
      }
      if (!allow_withdraw) {
        d.stale_extras.insert({sw_node, si});
        continue;
      }
      remove_slice_handle(d, sw_node, si);
      d.stale_extras.erase({sw_node, si});
      d.install_holes.erase({sw_node, si});
      ++fault_stats_.delta_withdrawals;
      FaultCounters::get().delta_withdrawals.add();
    }
  }
  for (int sw_node : targets) {  // pass 2: delta installs / hole healing
    if (!net_.has_switch(sw_node)) continue;
    for (std::size_t si : p.slices_at(sw_node)) {
      const auto it = d.by_slice.find(sw_node);
      if (it != d.by_slice.end() && it->second.contains(si)) {
        d.install_holes.erase({sw_node, si});
        continue;
      }
      try {
        install_one_slice(d, sw_node, si);
        d.install_holes.erase({sw_node, si});
        ++fault_stats_.delta_installs;
        FaultCounters::get().delta_installs.add();
      } catch (const std::exception&) {
        d.install_holes.insert({sw_node, si});
      }
    }
  }
  for (int sw_node : targets) {  // pass 3: refresh the published placement
    std::vector<std::size_t> fresh = p.slices_at(sw_node);
    if (allow_withdraw) {
      if (fresh.empty())
        d.placement.assignment.erase(sw_node);
      else
        d.placement.assignment[sw_node] = std::move(fresh);
    } else if (!fresh.empty()) {
      auto& slot = d.placement.assignment[sw_node];
      for (std::size_t si : fresh)
        if (std::find(slot.begin(), slot.end(), si) == slot.end())
          slot.push_back(si);
      std::sort(slot.begin(), slot.end());
    }
  }
}

void NetworkController::verify_placer(const Deployment& d,
                                      const IncrementalPlacer& p) const {
  const Placement scratch =
      place_resilient(net_.topo(), p.ingress(), p.num_slices());
  if (p.placement().assignment != scratch.assignment)
    throw std::logic_error(
        "incremental placement diverged from the scratch oracle for '" +
        d.query + "'");
}

void NetworkController::note_replacement(std::size_t scope,
                                         std::size_t changed) {
  ++fault_stats_.replace_events;
  fault_stats_.replace_scope_switches += scope;
  fault_stats_.replace_changed_switches += changed;
  fault_stats_.last_replace_scope = scope;
  fault_stats_.last_replace_changed = changed;
  auto& c = FaultCounters::get();
  c.replace_events.add();
  c.replace_scope.add(scope);
  c.replace_changed.add(changed);
}

void NetworkController::replace_for_event(Deployment& d, bool allow_withdraw,
                                          bool switch_event, int a, int b) {
  const auto it = placers_.find(d.query);
  if (mode_ == PlacementMode::Incremental && it != placers_.end()) {
    IncrementalPlacer& p = it->second;
    if (switch_event)
      p.on_switch_event(a);
    else
      p.on_link_event(a, b);
    if (verify_placement_) verify_placer(d, p);
    note_replacement(p.last_scope(), p.last_changed());
    reconcile_incremental(d, p, allow_withdraw);
    return;
  }
  // Scratch baseline: the whole live fabric is the re-placement scope.
  std::size_t live = 0;
  for (int s : net_.topo().switches())
    if (net_.topo().node_up(s)) ++live;
  note_replacement(live, 0);
  reconcile(d, allow_withdraw);
}

void NetworkController::on_switch_failed(int sw_node) {
  for (auto& [name, d] : deployments_) {
    // The dead switch's rules are unreachable: orphan the handles so a
    // recovery can clean them up, and forget its placement entries.
    if (const auto it = d.handles.find(sw_node); it != d.handles.end()) {
      auto& orph = d.orphaned[sw_node];
      orph.insert(orph.end(), it->second.begin(), it->second.end());
      d.handles.erase(it);
    }
    d.by_slice.erase(sw_node);
    d.placement.assignment.erase(sw_node);
    std::erase_if(d.install_holes,
                  [&](const auto& e) { return e.first == sw_node; });
    std::erase_if(d.stale_extras,
                  [&](const auto& e) { return e.first == sw_node; });
    if (d.resilient)
      replace_for_event(d, /*allow_withdraw=*/true, /*switch_event=*/true,
                        sw_node, -1);
    refresh_degraded(d);
  }
  ++fault_stats_.failovers;
  FaultCounters::get().failovers.add();
}

void NetworkController::on_switch_restored(int sw_node) {
  for (auto& [name, d] : deployments_) {
    // A returning switch boots with its old (stale) rules: clear them
    // before the reconciliation decides what it should actually hold.
    if (const auto it = d.orphaned.find(sw_node); it != d.orphaned.end()) {
      for (uint64_t h : it->second) net_.sw(sw_node).remove(h);
      d.orphaned.erase(it);
    }
    if (d.resilient)
      replace_for_event(d, /*allow_withdraw=*/true, /*switch_event=*/true,
                        sw_node, -1);
    refresh_degraded(d);
  }
}

void NetworkController::handle_link_event(int a, int b) {
  for (auto& [name, d] : deployments_) {
    if (!d.resilient) continue;
    replace_for_event(d, /*allow_withdraw=*/false, /*switch_event=*/false, a,
                      b);
    refresh_degraded(d);
  }
}

void NetworkController::on_link_failed(int a, int b) {
  handle_link_event(a, b);
}

void NetworkController::on_link_restored(int a, int b) {
  handle_link_event(a, b);
}

PlacementMode NetworkController::default_placement_mode() {
  return std::getenv("NEWTON_NO_INC_PLACE") ? PlacementMode::Scratch
                                            : PlacementMode::Incremental;
}

const NetworkController::Deployment* NetworkController::deployment(
    const std::string& name) const {
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? nullptr : &it->second;
}

const std::vector<QuerySlice>* NetworkController::slices_of(
    const std::string& name) const {
  const Deployment* d = deployment(name);
  return d == nullptr ? nullptr : &d->slices;
}

}  // namespace newton
