#include "net/routing.h"

#include <queue>

namespace newton {

std::optional<std::vector<int>> route(const Topology& t, int src, int dst,
                                      uint32_t flow_hash) {
  const std::size_t n = t.nodes.size();
  std::vector<int> dist(n, -1);
  // BFS from the destination so forwarding can greedily descend distances —
  // mirroring destination-based routing tables.
  std::queue<int> q;
  dist[dst] = 0;
  q.push(dst);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : t.neighbors(u)) {
      // Hosts only terminate paths; they do not transit.
      if (t.nodes[v].type == NodeType::Host && v != src) continue;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  if (dist[src] < 0) return std::nullopt;

  std::vector<int> path{src};
  int cur = src;
  while (cur != dst) {
    std::vector<int> next;
    for (int v : t.neighbors(cur))
      if (dist[v] == dist[cur] - 1) next.push_back(v);
    // Deterministic ECMP: hash picks among equal-cost next hops.
    const int pick =
        next[(flow_hash + static_cast<uint32_t>(path.size()) * 0x9e3779b9u) %
             next.size()];
    path.push_back(pick);
    cur = pick;
  }
  return path;
}

std::vector<int> switches_on(const Topology& t, const std::vector<int>& path) {
  std::vector<int> out;
  for (int n : path)
    if (t.is_switch(n)) out.push_back(n);
  return out;
}

}  // namespace newton
