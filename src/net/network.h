// Multi-switch network simulator: one Newton switch per topology switch
// node, packets forwarded along routed paths, the SP header piggybacked
// between hops (§5.1).  Counts the CQE bandwidth overhead and hands
// unfinished executions to the deferred handler (software analyzer).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/newton_switch.h"
#include "net/routing.h"
#include "net/topology.h"
#include "packet/flow_key.h"

namespace newton {

class Network {
 public:
  Network(Topology topo, std::size_t stages_per_switch, ReportSink* sink,
          std::size_t bank_registers = kStateBankRegisters);

  Topology& topo() { return topo_; }
  const Topology& topo() const { return topo_; }
  NewtonSwitch& sw(int node) { return *switches_.at(node); }
  bool has_switch(int node) const { return switches_.contains(node); }
  std::size_t stages_per_switch() const { return stages_per_switch_; }

  struct SendStats {
    std::size_t hops = 0;        // switches traversed
    std::size_t sp_link_bytes = 0;  // SP header bytes carried on links
    bool delivered = false;
    bool deferred = false;       // execution continued in software
  };

  // Route and forward one packet host-to-host.  The SP header produced by a
  // hop is consumed by the next hop hosting the successor slice; if the
  // packet reaches the egress edge with the query unfinished, the deferred
  // handler is invoked (§5.2).
  SendStats send(const Packet& pkt, int src_host, int dst_host);

  // Forward along an explicit switch path (the paper's line-testbed mode).
  SendStats send_along(const Packet& pkt, const std::vector<int>& sw_path);

  // Set the epoch length of every switch in the network at once — the CQE
  // differential harness (src/difftest/) drives whole-network runs at the
  // scenario's window, which must agree across every hop for the slices'
  // windowed state to roll together.
  void set_window_ns(uint64_t w);

  void set_deferred_handler(
      std::function<void(const Packet&, const SpHeader&)> h) {
    deferred_ = std::move(h);
  }

  uint64_t packets_sent() const { return packets_sent_; }
  // Packets with no live route (network partitioned by failures).
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t total_sp_link_bytes() const { return sp_link_bytes_; }
  uint64_t total_payload_link_bytes() const { return payload_link_bytes_; }

 private:
  Topology topo_;
  std::size_t stages_per_switch_;
  std::map<int, std::unique_ptr<NewtonSwitch>> switches_;
  std::function<void(const Packet&, const SpHeader&)> deferred_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t sp_link_bytes_ = 0;
  uint64_t payload_link_bytes_ = 0;
};

}  // namespace newton
