// Network topologies for the network-wide experiments: k-ary fat-trees
// (Fig. 17's data-center case), a North-America ISP backbone modeled after
// the public AT&T OC-768 map (Fig. 17's WAN case), and the 3-switch line of
// the paper's testbed (Fig. 8, used by Fig. 13/14).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace newton {

enum class NodeType : uint8_t { Switch, Host };

struct Topology {
  struct Node {
    NodeType type;
    std::string name;
  };

  std::vector<Node> nodes;
  std::vector<std::set<int>> adj;           // undirected links
  std::set<std::pair<int, int>> failed;     // failed links (min,max) pairs
  std::set<int> failed_nodes;               // failed (dead) switch nodes

  int add_node(NodeType type, std::string name);
  void add_link(int a, int b);
  // Fail / restore a link at runtime (triggers rerouting in `routing.h`).
  void fail_link(int a, int b);
  void restore_link(int a, int b);
  bool link_up(int a, int b) const;
  // Fail / restore a whole switch: all of its links go down with it.
  void fail_node(int n);
  void restore_node(int n);
  bool node_up(int n) const { return !failed_nodes.contains(n); }

  // Live neighbors of `n`.
  std::vector<int> neighbors(int n) const;
  std::vector<int> switches() const;
  std::vector<int> hosts() const;
  bool is_switch(int n) const {
    return nodes.at(static_cast<std::size_t>(n)).type == NodeType::Switch;
  }
  // Live switches adjacent to at least one host (candidate first hops).
  std::vector<int> edge_switches() const;
};

// k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches, (k/2)^2
// cores, k/2 hosts per edge switch.  k must be even.
Topology make_fat_tree(int k);

// ~25-PoP North-America backbone (AT&T OC-768-style connectivity), one
// stub host per PoP.
Topology make_isp_backbone();

// The paper's testbed shape: `n` switches in a line, one host at each end.
Topology make_line(int n_switches);

}  // namespace newton
