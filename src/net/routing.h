// Shortest-path routing with ECMP over the live topology.  Paths react to
// link failures (failed links are invisible to the BFS), which drives the
// reroute scenarios the resilient placement must survive (§5.2, Fig. 9).
#pragma once

#include <optional>
#include <vector>

#include "net/topology.h"

namespace newton {

// Shortest path between two nodes; among equal-cost next hops, picks by
// `flow_hash` (ECMP).  Returns nullopt if disconnected.
std::optional<std::vector<int>> route(const Topology& t, int src, int dst,
                                      uint32_t flow_hash = 0);

// All switches on a path (strips hosts).
std::vector<int> switches_on(const Topology& t, const std::vector<int>& path);

}  // namespace newton
