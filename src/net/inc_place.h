// Incremental Algorithm 2 placement (ROADMAP item 4).
//
// `place_resilient` recomputes the full layered-BFS reachability of the
// fabric on every topology event — O(switches * slices) set operations per
// churn event, which at fleet scale (1–4k switches) dwarfs the actual
// install/withdraw delta.  IncrementalPlacer maintains the same fixpoint as
// a per-switch depth bitmask and relaxes only the subtree a churn event can
// actually reach:
//
//   mask[s] = 0                                 if s is not a live switch
//   mask[s] = (ingress(s) | OR_{n in live switch neighbors(s)} mask[n] << 1)
//             & ((1 << num_slices) - 1)         otherwise
//
// Bit d-1 of mask[s] is set iff s is reachable in d-1 hops from a live
// ingress edge switch — exactly the (switch, depth) pairs `place_resilient`
// walks, so materializing the set bits reproduces its Placement verbatim.
// The equation is stratified by bit index (bit d depends only on the
// neighbors' bit d-1, bit 0 only on liveness + ingress membership), so
// worklist relaxation from the event's endpoints converges to the unique
// global fixpoint no matter the evaluation order; each relaxation touches
// only switches whose reachability the event could have changed.
//
// Every run can be cross-checked against the scratch oracle via
// `NetworkController::set_verify_placement(true)` and the difftest
// `place` axis (docs/fleet.md).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/placement.h"
#include "net/topology.h"

namespace newton {

class IncrementalPlacer {
 public:
  // One bit per slice: queries whose CQE chains exceed this fall back to
  // scratch re-placement in the controller (none do in practice — the
  // deepest standard chain slices to ~6).
  static constexpr std::size_t kMaxSlices = 64;

  IncrementalPlacer() = default;
  // `t` is borrowed and must outlive the placer; the node set must not
  // grow after construction (fail/restore events only).
  IncrementalPlacer(const Topology* t, std::vector<int> ingress_edges,
                    std::size_t num_slices);

  // Full fixpoint from scratch (construction, or resync after an
  // unobserved topology change).  Counts as a whole-fabric event for the
  // scope accounting.
  void recompute();

  // Notify the placer AFTER the topology mutated.  Each call relaxes the
  // affected subtree and updates the scope/changed accounting.
  void on_link_event(int a, int b);
  void on_switch_event(int n);

  // Materialize the masks into Algorithm 2's Placement (byte-identical to
  // `place_resilient` on the current topology).
  Placement placement() const;
  // Slice indices currently assigned to one switch (ascending).
  std::vector<std::size_t> slices_at(int s) const;

  // Switches whose assignment changed in the last event (ascending) — the
  // controller's delta application only needs to look at these.
  const std::vector<int>& last_changed_switches() const { return changed_; }
  // Switches re-evaluated by the last event (the re-placement "scope" the
  // fleet bench gates on) and the number whose mask actually moved.
  std::size_t last_scope() const { return last_scope_; }
  std::size_t last_changed() const { return changed_.size(); }

  std::size_t num_slices() const { return num_slices_; }
  const std::vector<int>& ingress() const { return ingress_; }

 private:
  uint64_t eval(int s) const;
  void relax(std::vector<int> seeds);

  const Topology* t_ = nullptr;
  std::vector<int> ingress_;
  std::set<int> ingress_set_;
  std::size_t num_slices_ = 0;
  uint64_t full_mask_ = 0;
  std::vector<uint64_t> mask_;
  std::vector<int> changed_;
  std::size_t last_scope_ = 0;
};

}  // namespace newton
