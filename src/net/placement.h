// Resilient module-rule placement — Algorithm 2 (§5.2).
//
// Queries are placed along ALL possible paths without consulting forwarding
// rules: slice c_d goes onto every switch reachable in d-1 hops from an
// edge switch where monitored traffic enters.  Whatever path a reroute
// picks, the packet meets slice 1 at its first hop, slice 2 within the next
// hop, and so on.  Rule multiplexing bounds the redundancy: a switch holds
// each slice at most once no matter how many flows/paths cross it.
//
// We compute reachability with a depth-layered BFS (a polynomial
// over-approximation of the paper's simple-path DFS with backtracking —
// walks instead of simple paths).  The over-approximation can only ADD
// slice replicas, so the resilience invariant is preserved.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/cqe.h"
#include "net/topology.h"

namespace newton {

struct Placement {
  // P[s]: slice indices (0-based) assigned to each switch, in order.
  std::map<int, std::vector<std::size_t>> assignment;

  std::size_t switches_used() const { return assignment.size(); }
  bool has(int sw, std::size_t slice) const;
};

// Run Algorithm 2 from the given ingress edge switches for a query of
// `num_slices` partitions.  Failed switches (and switches only reachable
// through failed elements) receive nothing; on a disconnected topology the
// placement degrades to whatever is reachable.
Placement place_resilient(const Topology& t,
                          const std::vector<int>& edge_switches,
                          std::size_t num_slices);

// Naive shortest-path-only placement: slice i goes onto the i-th switch of
// one concrete path.  This is the strawman Algorithm 2 exists to beat — a
// reroute off `sw_path` loses the downstream slices (tests use it as the
// control arm of the fault-injection experiments).  The path must hold at
// least `num_slices` switches.
Placement place_on_path(const std::vector<int>& sw_path,
                        std::size_t num_slices);

struct PlacementStats {
  std::size_t total_entries = 0;
  double avg_entries_per_switch = 0;
  std::size_t switches = 0;
};

// Table-entry cost of a placement (Fig. 17's metric): per switch, the sum
// of each assigned slice's module rules, plus the newton_init entries for
// first-slice switches.
PlacementStats placement_stats(const Placement& p,
                               const std::vector<QuerySlice>& slices);

}  // namespace newton
