#include "packet/sp_header.h"

namespace newton {

std::array<uint8_t, kSpHeaderBytes> sp_encode(const SpHeader& h) {
  std::array<uint8_t, kSpHeaderBytes> out{};
  out[0] = h.qid;
  out[1] = h.next_slice;
  out[2] = static_cast<uint8_t>(h.hash_result >> 8);
  out[3] = static_cast<uint8_t>(h.hash_result);
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<uint8_t>(h.state_result >> (24 - 8 * i));
    out[8 + i] = static_cast<uint8_t>(h.global_result >> (24 - 8 * i));
  }
  return out;
}

std::optional<SpHeader> sp_decode(const uint8_t* data, std::size_t len) {
  if (data == nullptr || len < kSpHeaderBytes) return std::nullopt;
  SpHeader h;
  h.qid = data[0];
  h.next_slice = data[1];
  h.hash_result = static_cast<uint16_t>((uint16_t{data[2]} << 8) | data[3]);
  h.state_result = 0;
  h.global_result = 0;
  for (int i = 0; i < 4; ++i) {
    h.state_result = (h.state_result << 8) | data[4 + i];
    h.global_result = (h.global_result << 8) | data[8 + i];
  }
  return h;
}

}  // namespace newton
