// Wire-format codec: Ethernet / IPv4 / TCP|UDP parsing and deparsing, plus
// the result-snapshot (SP) shim header.
//
// The simulator mostly operates on pre-parsed Packets, but the codec pins
// down what actually crosses links: §5.1 "re-designs the parser to decode
// the SP header" — here the SP travels as a 12-byte shim between Ethernet
// and IPv4, marked by a dedicated EtherType, and "switches will remove the
// SP header before packets arrive at the destination end-hosts" maps to
// deparsing without the shim.
//
//   [eth dst 6][eth src 6][ethertype 2]            0x0800 plain IPv4
//   [eth ...][0x88B5][SP 12 bytes][IPv4 ...]       SP-wrapped IPv4
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/packet.h"
#include "packet/sp_header.h"

namespace newton {

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeSp = 0x88B5;  // local-experimental space
inline constexpr uint16_t kEtherTypeVlan = 0x8100;  // 802.1Q
inline constexpr uint16_t kEtherTypeIpv6 = 0x86DD;

// Coarse frame classification, used by the pcap reader and the live sources
// to attribute skipped frames to a reason (802.1Q-tagged, IPv6, other).
// Vlan wins over the inner type: a tagged IPv6 frame classifies as Vlan.
enum class FrameKind : uint8_t { Ipv4, Sp, Vlan, Ipv6, Other };

FrameKind classify_frame(const uint8_t* data, std::size_t len);

struct ParsedFrame {
  Packet packet;
  std::optional<SpHeader> sp;
};

// Serialize a packet to a frame of exactly max(pkt.wire_len, header size)
// bytes (payload zero-padded).  When `sp` is given, the SP shim is
// inserted and the frame grows by kSpHeaderBytes.
std::vector<uint8_t> deparse_frame(const Packet& pkt,
                                   const std::optional<SpHeader>& sp = {});

// Parse a frame; returns nullopt for anything malformed (short buffers,
// non-IPv4, bad IHL, bad IPv4 checksum, truncated transport header).
// The packet's ts_ns is left 0 (timestamps are not on the wire).
std::optional<ParsedFrame> parse_frame(const uint8_t* data, std::size_t len);

inline std::optional<ParsedFrame> parse_frame(
    const std::vector<uint8_t>& frame) {
  return parse_frame(frame.data(), frame.size());
}

// Insert / remove an 802.1Q tag (TPID 0x8100, the given 12-bit VLAN id,
// priority 0) directly after the Ethernet source address.  strip_vlan
// returns nullopt when the frame carries no tag; wrap_vlan(strip_vlan(f))
// round-trips byte-identically.
std::vector<uint8_t> wrap_vlan(const std::vector<uint8_t>& frame,
                               uint16_t vlan_id);
std::optional<std::vector<uint8_t>> strip_vlan(
    const std::vector<uint8_t>& frame);

// RFC 1071 checksum over a header.
uint16_t ipv4_checksum(const uint8_t* data, std::size_t len);

}  // namespace newton
