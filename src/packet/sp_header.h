// Result-snapshot (SP) header for cross-switch query execution (§5.1).
//
// CQE piggybacks a snapshot of module execution results in packets so a
// query sliced across switches can resume where the previous hop stopped.
// The paper reserves 12 bytes; operation keys are NOT carried — they are
// re-derived from packet headers by K at the next hop, so only results
// travel.  Layout (big-endian on the wire):
//
//   byte 0      query id
//   byte 1      next slice index (which query partition runs next)
//   bytes 2-3   hash result (16 bits)
//   bytes 4-7   state result (32 bits)
//   bytes 8-11  global result (32 bits)
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace newton {

struct SpHeader {
  uint8_t qid = 0;
  uint8_t next_slice = 0;
  uint16_t hash_result = 0;
  uint32_t state_result = 0;
  uint32_t global_result = 0;

  friend bool operator==(const SpHeader&, const SpHeader&) = default;
};

inline constexpr std::size_t kSpHeaderBytes = 12;

// Serialize into exactly kSpHeaderBytes bytes.
std::array<uint8_t, kSpHeaderBytes> sp_encode(const SpHeader& h);

// Parse a header; returns nullopt if the buffer is too short.
std::optional<SpHeader> sp_decode(const uint8_t* data, std::size_t len);

}  // namespace newton
