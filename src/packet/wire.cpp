#include "packet/wire.h"

#include <algorithm>

namespace newton {
namespace {

constexpr std::size_t kEthBytes = 14;
constexpr std::size_t kIpv4Bytes = 20;
constexpr std::size_t kTcpBytes = 20;
constexpr std::size_t kUdpBytes = 8;

void put16(std::vector<uint8_t>& b, std::size_t at, uint16_t v) {
  b[at] = static_cast<uint8_t>(v >> 8);
  b[at + 1] = static_cast<uint8_t>(v);
}

void put32(std::vector<uint8_t>& b, std::size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<uint8_t>(v >> (24 - 8 * i));
}

uint16_t get16(const uint8_t* b, std::size_t at) {
  return static_cast<uint16_t>((uint16_t{b[at]} << 8) | b[at + 1]);
}

uint32_t get32(const uint8_t* b, std::size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

FrameKind classify_frame(const uint8_t* data, std::size_t len) {
  if (len < kEthBytes) return FrameKind::Other;
  const uint16_t ethertype =
      static_cast<uint16_t>((uint16_t{data[12]} << 8) | data[13]);
  switch (ethertype) {
    case kEtherTypeVlan: return FrameKind::Vlan;
    case kEtherTypeIpv6: return FrameKind::Ipv6;
    case kEtherTypeSp: return FrameKind::Sp;
    case kEtherTypeIpv4: return FrameKind::Ipv4;
    default: return FrameKind::Other;
  }
}

std::vector<uint8_t> wrap_vlan(const std::vector<uint8_t>& frame,
                               uint16_t vlan_id) {
  std::vector<uint8_t> out;
  out.reserve(frame.size() + 4);
  const std::size_t macs = std::min<std::size_t>(frame.size(), 12);
  out.insert(out.end(), frame.begin(),
             frame.begin() + static_cast<long>(macs));
  out.push_back(static_cast<uint8_t>(kEtherTypeVlan >> 8));
  out.push_back(static_cast<uint8_t>(kEtherTypeVlan));
  out.push_back(static_cast<uint8_t>((vlan_id >> 8) & 0x0f));  // PCP/DEI 0
  out.push_back(static_cast<uint8_t>(vlan_id));
  out.insert(out.end(), frame.begin() + static_cast<long>(macs), frame.end());
  return out;
}

std::optional<std::vector<uint8_t>> strip_vlan(
    const std::vector<uint8_t>& frame) {
  if (frame.size() < kEthBytes + 4 ||
      classify_frame(frame.data(), frame.size()) != FrameKind::Vlan)
    return std::nullopt;
  std::vector<uint8_t> out;
  out.reserve(frame.size() - 4);
  out.insert(out.end(), frame.begin(), frame.begin() + 12);
  out.insert(out.end(), frame.begin() + 16, frame.end());
  return out;
}

uint16_t ipv4_checksum(const uint8_t* data, std::size_t len) {
  uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2)
    sum += (uint32_t{data[i]} << 8) | data[i + 1];
  if (len % 2) sum += uint32_t{data[len - 1]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

std::vector<uint8_t> deparse_frame(const Packet& pkt,
                                   const std::optional<SpHeader>& sp) {
  const bool tcp = pkt.is_tcp();
  const std::size_t transport = tcp ? kTcpBytes : kUdpBytes;
  const std::size_t shim = sp ? kSpHeaderBytes : 0;
  const std::size_t headers = kEthBytes + shim + kIpv4Bytes + transport;
  const std::size_t total =
      std::max<std::size_t>(headers, pkt.wire_len + shim);
  std::vector<uint8_t> b(total, 0);

  // Ethernet (MACs zero; the simulator routes on L3).
  put16(b, 12, sp ? kEtherTypeSp : kEtherTypeIpv4);
  std::size_t at = kEthBytes;

  if (sp) {
    const auto spb = sp_encode(*sp);
    std::copy(spb.begin(), spb.end(), b.begin() + static_cast<long>(at));
    at += kSpHeaderBytes;
  }

  // IPv4.
  const std::size_t ip_at = at;
  b[at] = 0x45;  // version 4, IHL 5
  b[at + 1] = 0;
  const std::size_t ip_total = total - kEthBytes - shim;
  put16(b, at + 2, static_cast<uint16_t>(ip_total));
  put16(b, at + 4, static_cast<uint16_t>(pkt.get(Field::IpId)));
  put16(b, at + 6, 0);  // flags/fragment
  b[at + 8] = static_cast<uint8_t>(pkt.get(Field::Ttl));
  b[at + 9] = static_cast<uint8_t>(pkt.proto());
  put32(b, at + 12, pkt.sip());
  put32(b, at + 16, pkt.dip());
  put16(b, at + 10, 0);
  put16(b, at + 10, ipv4_checksum(b.data() + ip_at, kIpv4Bytes));
  at += kIpv4Bytes;

  // Transport.
  put16(b, at, static_cast<uint16_t>(pkt.sport()));
  put16(b, at + 2, static_cast<uint16_t>(pkt.dport()));
  if (tcp) {
    b[at + 12] = 0x50;  // data offset 5
    b[at + 13] = static_cast<uint8_t>(pkt.tcp_flags());
    put16(b, at + 14, 0xffff);  // window
  } else {
    put16(b, at + 4,
          static_cast<uint16_t>(ip_total - kIpv4Bytes));  // UDP length
  }
  return b;
}

std::optional<ParsedFrame> parse_frame(const uint8_t* frame,
                                       std::size_t size) {
  if (size < kEthBytes + kIpv4Bytes) return std::nullopt;
  const uint16_t ethertype = get16(frame, 12);
  std::size_t at = kEthBytes;

  ParsedFrame out;
  if (ethertype == kEtherTypeSp) {
    if (size < at + kSpHeaderBytes + kIpv4Bytes) return std::nullopt;
    out.sp = sp_decode(frame + at, kSpHeaderBytes);
    at += kSpHeaderBytes;
  } else if (ethertype != kEtherTypeIpv4) {
    return std::nullopt;
  }

  // IPv4.
  if (size < at + kIpv4Bytes) return std::nullopt;
  if ((frame[at] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (frame[at] & 0x0f) * 4u;
  if (ihl < kIpv4Bytes || size < at + ihl) return std::nullopt;
  if (ipv4_checksum(frame + at, ihl) != 0) return std::nullopt;

  Packet& p = out.packet;
  const uint16_t ip_total = get16(frame, at + 2);
  p.set(Field::IpId, get16(frame, at + 4));
  p.set(Field::Ttl, frame[at + 8]);
  const uint8_t proto = frame[at + 9];
  p.set(Field::Proto, proto);
  p.set(Field::SrcIp, get32(frame, at + 12));
  p.set(Field::DstIp, get32(frame, at + 16));
  p.set(Field::PktLen, ip_total);
  p.wire_len = kEthBytes + ip_total;
  at += ihl;

  if (proto == kProtoTcp) {
    if (size < at + kTcpBytes) return std::nullopt;
    p.set(Field::SrcPort, get16(frame, at));
    p.set(Field::DstPort, get16(frame, at + 2));
    p.set(Field::TcpFlags, frame[at + 13]);
  } else if (proto == kProtoUdp) {
    if (size < at + kUdpBytes) return std::nullopt;
    p.set(Field::SrcPort, get16(frame, at));
    p.set(Field::DstPort, get16(frame, at + 2));
  }
  return out;
}

}  // namespace newton
