// Flow keys: the 5-tuple plus coarser aggregates used by queries, baselines
// and the ground-truth evaluator.
#pragma once

#include <cstdint>
#include <functional>

#include "packet/packet.h"

namespace newton {

struct FiveTuple {
  uint32_t sip = 0;
  uint32_t dip = 0;
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint8_t proto = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  static FiveTuple of(const Packet& p) {
    return {p.sip(), p.dip(), static_cast<uint16_t>(p.sport()),
            static_cast<uint16_t>(p.dport()), static_cast<uint8_t>(p.proto())};
  }
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    // FNV-1a over the packed tuple; adequate for hash-map usage.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
      }
    };
    mix((uint64_t{t.sip} << 32) | t.dip);
    mix((uint64_t{t.sport} << 32) | (uint64_t{t.dport} << 16) | t.proto);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace newton

template <>
struct std::hash<newton::FiveTuple> {
  std::size_t operator()(const newton::FiveTuple& t) const {
    return newton::FiveTupleHash{}(t);
  }
};
