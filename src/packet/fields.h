// Global header-field registry shared by the data plane and the query API.
//
// Newton's key-selection module (K) operates over a fixed list of "global
// fields" parsed from every packet (§4.1).  Each field is identified by a
// Field id; K applies a per-field bit mask to conceal unneeded fields or to
// coarsen values (e.g. keep an IP prefix, discretize a length).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace newton {

enum class Field : uint8_t {
  SrcIp = 0,
  DstIp,
  SrcPort,
  DstPort,
  Proto,
  TcpFlags,
  PktLen,
  Ttl,
  IpId,
};

inline constexpr std::size_t kNumFields = 9;

// Bit width of each field as carried in the PHV.  Widths drive the crossbar
// and hash-bit resource accounting in the resource model.
constexpr std::array<uint8_t, kNumFields> kFieldBits{32, 32, 16, 16,
                                                     8,  8,  16, 8, 16};

constexpr std::string_view field_name(Field f) {
  constexpr std::array<std::string_view, kNumFields> names{
      "sip", "dip", "sport", "dport", "proto", "tcp_flags",
      "pkt_len", "ttl", "ip_id"};
  return names[static_cast<std::size_t>(f)];
}

constexpr uint8_t field_bits(Field f) {
  return kFieldBits[static_cast<std::size_t>(f)];
}

// Full-width mask for a field (used as the default K mask).
constexpr uint32_t field_full_mask(Field f) {
  const uint8_t bits = field_bits(f);
  return bits >= 32 ? 0xffffffffu : ((1u << bits) - 1u);
}

constexpr std::size_t index(Field f) { return static_cast<std::size_t>(f); }

// IP protocol numbers used throughout the queries and trace generator.
inline constexpr uint32_t kProtoTcp = 6;
inline constexpr uint32_t kProtoUdp = 17;
inline constexpr uint32_t kProtoIcmp = 1;

// TCP flag bits (subset relevant to the evaluation queries).
inline constexpr uint32_t kTcpFin = 0x01;
inline constexpr uint32_t kTcpSyn = 0x02;
inline constexpr uint32_t kTcpRst = 0x04;
inline constexpr uint32_t kTcpPsh = 0x08;
inline constexpr uint32_t kTcpAck = 0x10;
inline constexpr uint32_t kTcpSynAck = kTcpSyn | kTcpAck;

}  // namespace newton
