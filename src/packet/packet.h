// Packet representation used by the trace generator and the data-plane
// simulator.  A Packet is the already-parsed view of a wire packet: the
// global fields K can select from, a timestamp, and the wire length used for
// bandwidth accounting.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "packet/fields.h"

namespace newton {

struct Packet {
  uint64_t ts_ns = 0;        // arrival timestamp
  uint32_t wire_len = 64;    // full frame length in bytes (>= pkt_len field)
  std::array<uint32_t, kNumFields> fields{};

  uint32_t get(Field f) const { return fields[index(f)]; }
  void set(Field f, uint32_t v) { fields[index(f)] = v; }

  uint32_t sip() const { return get(Field::SrcIp); }
  uint32_t dip() const { return get(Field::DstIp); }
  uint32_t sport() const { return get(Field::SrcPort); }
  uint32_t dport() const { return get(Field::DstPort); }
  uint32_t proto() const { return get(Field::Proto); }
  uint32_t tcp_flags() const { return get(Field::TcpFlags); }

  bool is_tcp() const { return proto() == kProtoTcp; }
  bool is_udp() const { return proto() == kProtoUdp; }
};

// Convenience constructor for tests / examples.
Packet make_packet(uint32_t sip, uint32_t dip, uint32_t sport, uint32_t dport,
                   uint32_t proto, uint32_t tcp_flags = 0,
                   uint32_t pkt_len = 64, uint64_t ts_ns = 0);

// Dotted-quad helpers (host byte order).
uint32_t ipv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
std::string ipv4_to_string(uint32_t ip);

}  // namespace newton
