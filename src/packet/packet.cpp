#include "packet/packet.h"

#include <cstdio>

namespace newton {

Packet make_packet(uint32_t sip, uint32_t dip, uint32_t sport, uint32_t dport,
                   uint32_t proto, uint32_t tcp_flags, uint32_t pkt_len,
                   uint64_t ts_ns) {
  Packet p;
  p.ts_ns = ts_ns;
  p.wire_len = pkt_len;
  p.set(Field::SrcIp, sip);
  p.set(Field::DstIp, dip);
  p.set(Field::SrcPort, sport);
  p.set(Field::DstPort, dport);
  p.set(Field::Proto, proto);
  p.set(Field::TcpFlags, tcp_flags);
  p.set(Field::PktLen, pkt_len);
  p.set(Field::Ttl, 64);
  return p;
}

uint32_t ipv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
         uint32_t{d};
}

std::string ipv4_to_string(uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace newton
