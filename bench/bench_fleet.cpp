// Fleet-scale emulation bench (ROADMAP item 4, docs/fleet.md).
//
// Newton's fleet story is that a fabric of hundreds-to-thousands of
// switches can absorb query installs and topology churn without the
// controller recomputing or the collector drowning.  This bench measures
// the three legs of that claim on k-ary fat-trees (5k^2/4 switches):
//
//   phase A  fleet-wide install latency: resiliently deploy N CQE-sliced
//            queries across every edge switch of the fabric and report the
//            wall + modeled install-latency distribution (p50/p99).
//   phase B  re-placement scope under churn: replay the same deterministic
//            switch-kill/restore + link-flap sequence against a scratch
//            (full place_resilient recompute per event) controller and an
//            incremental (subtree relaxation, docs/fleet.md) controller,
//            reporting per-event re-placement scope — the fraction of the
//            fabric each event made the placer re-evaluate — and wall
//            time.  Scratch is by construction ~100%; the incremental
//            fraction is the headline number and is gated in CI.
//   phase C  report volume: stream an attack-mix trace through the fabric
//            with the k-ary AggregationTree interposed as every switch's
//            report sink, and report leaf-vs-root record volume, the
//            per-edge merge compression, and the tree shape.
//
//   bench_fleet [--k 16[,24,32]]      fat-tree arities (default 16)
//               [--fanin N]           aggregation-tree fan-in (default 16)
//               [--queries N]         deployed queries (default 8)
//               [--stages N]          per-switch stage budget (default 3,
//                                     small so queries slice across hops)
//               [--churn-events N]    phase-B events per arity (default 24)
//               [--packets N]         phase-C trace packets (default 20000)
//               [--seed S]            churn/trace seed (default 1)
//               [--verify]            arm the incremental-vs-scratch
//                                     placement oracle on every event
//               [--max-touch-frac X]  exit 1 if the mean incremental
//                                     switch-churn scope fraction at the
//                                     first arity exceeds X (CI gate: 0.20)
//               [--max-install-ms X]  exit 1 if p99 wall install latency at
//                                     the first arity exceeds X ms
//
// Writes BENCH_fleet.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "bench_util.h"
#include "core/query.h"
#include "net/agg_tree.h"
#include "net/net_controller.h"
#include "net/network.h"
#include "net/topology.h"

namespace newton {
namespace {

uint64_t wall_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

// Small per-tenant query: narrow sketch (the fleet bench measures control
// and collection planes, not sketch accuracy), unreachable when-threshold
// kept OFF so phase C actually produces reports.
Query fleet_query(const std::string& name, uint16_t dport) {
  QueryBuilder b(name);
  b.sketch(2, 256);
  b.filter(Predicate{}.where(Field::Proto, Cmp::Eq, kProtoTcp))
      .map({Field::DstIp})
      .distinct({Field::DstIp})
      .reduce({Field::DstIp}, Agg::Sum)
      .when(Cmp::Ge, 2 + dport % 3);
  Query q = b.build();
  q.window_ns = 100'000'000;
  q.row_partitions = 1;
  return q;
}

struct CountingSink : ReportSink {
  ReportSink* down = nullptr;
  uint64_t n = 0;
  void report(const ReportRecord& r) override {
    ++n;
    if (down) down->report(r);
  }
};

// Deterministic host pairing (the difftest fault axis scheme).
std::size_t src_of(std::size_t i, std::size_t n) { return (i * 7 + 1) % n; }
std::size_t dst_of(std::size_t i, std::size_t n) {
  std::size_t d = (i * 11 + 5) % n;
  if (d == src_of(i, n)) d = (d + 1) % n;
  return d;
}

struct ChurnResult {
  double scope_avg_frac = 0;   // mean per-event scope / fabric size
  double scope_max_frac = 0;
  double sw_scope_avg_frac = 0;  // same, switch-kill/restore events only
  double changed_avg = 0;      // switches whose assignment moved (inc only)
  double wall_ms_avg = 0;
  std::size_t events = 0;
};

// The same deterministic event sequence for both modes: two switch events
// (kill + restore) twice, then one link flap (down + up), repeating.
ChurnResult run_churn(Network& net, NetworkController& ctl,
                      std::size_t n_events, uint32_t seed) {
  Topology& t = net.topo();
  const std::vector<int> sws = t.switches();
  std::vector<std::pair<int, int>> links;
  for (int s : sws)
    for (int n : t.adj.at(static_cast<std::size_t>(s)))
      if (t.is_switch(n) && s < n) links.push_back({s, n});

  ChurnResult r;
  double scope_sum = 0, sw_scope_sum = 0, changed_sum = 0, wall_sum = 0;
  std::size_t sw_events = 0, samples = 0;
  uint64_t x = seed * 2654435761u + 12345u;
  const auto next = [&] { return x = x * 6364136223846793005ull + 1442695040888963407ull; };

  const auto timed = [&](bool sw_event, auto&& fn) {
    const auto& fs = ctl.fault_stats();
    const uint64_t e0 = fs.replace_events, s0 = fs.replace_scope_switches;
    const uint64_t c0 = fs.replace_changed_switches;
    const uint64_t w0 = wall_ns();
    fn();
    const uint64_t w1 = wall_ns();
    const uint64_t de = fs.replace_events - e0;
    if (de == 0) return;
    const double scope =
        static_cast<double>(fs.replace_scope_switches - s0) /
        static_cast<double>(de);
    const double frac = scope / static_cast<double>(sws.size());
    scope_sum += frac;
    r.scope_max_frac = std::max(r.scope_max_frac, frac);
    changed_sum += static_cast<double>(fs.replace_changed_switches - c0) /
                   static_cast<double>(de);
    if (sw_event) {
      sw_scope_sum += frac;
      ++sw_events;
    }
    wall_sum += static_cast<double>(w1 - w0) / 1e6;
    ++samples;
  };

  for (std::size_t i = 0; i < n_events; ++i) {
    if (i % 3 == 2 && !links.empty()) {
      const auto [a, b] = links[next() % links.size()];
      if (!t.link_up(a, b)) continue;
      t.fail_link(a, b);
      timed(false, [&] { ctl.on_link_failed(a, b); });
      t.restore_link(a, b);
      timed(false, [&] { ctl.on_link_restored(a, b); });
    } else {
      const int s = sws[next() % sws.size()];
      if (!t.node_up(s)) continue;
      t.fail_node(s);
      timed(true, [&] { ctl.on_switch_failed(s); });
      t.restore_node(s);
      timed(true, [&] { ctl.on_switch_restored(s); });
    }
  }
  r.events = samples;
  if (samples > 0) {
    r.scope_avg_frac = scope_sum / static_cast<double>(samples);
    r.changed_avg = changed_sum / static_cast<double>(samples);
    r.wall_ms_avg = wall_sum / static_cast<double>(samples);
  }
  if (sw_events > 0)
    r.sw_scope_avg_frac = sw_scope_sum / static_cast<double>(sw_events);
  return r;
}

}  // namespace
}  // namespace newton

int main(int argc, char** argv) {
  using namespace newton;
  std::vector<int> ks = {16};
  std::size_t fanin = 16;
  std::size_t n_queries = 8;
  std::size_t stages = 3;
  std::size_t churn_events = 24;
  std::size_t n_packets = 20'000;
  uint32_t seed = 1;
  bool verify = false;
  double max_touch_frac = 0.0;
  double max_install_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--k" && has_next) {
      ks.clear();
      const char* p = argv[++i];
      while (*p) {
        ks.push_back(std::atoi(p));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (a == "--fanin" && has_next)
      fanin = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--queries" && has_next)
      n_queries = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--stages" && has_next)
      stages = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--churn-events" && has_next)
      churn_events = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--packets" && has_next)
      n_packets = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--seed" && has_next)
      seed = static_cast<uint32_t>(std::atol(argv[++i]));
    else if (a == "--verify")
      verify = true;
    else if (a == "--max-touch-frac" && has_next)
      max_touch_frac = std::atof(argv[++i]);
    else if (a == "--max-install-ms" && has_next)
      max_install_ms = std::atof(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--k 16[,24,32]] [--fanin N] "
                   "[--queries N] [--stages N]\n"
                   "                   [--churn-events N] [--packets N] "
                   "[--seed S] [--verify]\n"
                   "                   [--max-touch-frac X] "
                   "[--max-install-ms X]\n");
      return 2;
    }
  }

  bench::header("fleet-scale emulation: install, re-placement, collection "
                "(ISSUE 10)");

  constexpr std::size_t kBank = 4096;
  Trace trace = generate_trace(bench::bench_caida(seed));
  if (trace.size() > n_packets) trace.packets.resize(n_packets);

  FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f) std::fprintf(f, "{\n  \"fabrics\": [");

  int rc = 0;
  bool first_k = true;
  for (int k : ks) {
    const Topology topo = make_fat_tree(k);
    const std::size_t S = topo.switches().size();
    const std::size_t H = topo.hosts().size();
    std::size_t L = 0;
    for (std::size_t n = 0; n < topo.adj.size(); ++n) L += topo.adj[n].size();
    L /= 2;
    std::printf("\nfat-tree k=%d: %zu switches, %zu hosts, %zu links\n", k, S,
                H, L);

    // --- phase A: fleet-wide install latency (incremental controller) ---
    Analyzer an;
    Network net(topo, stages, &an, kBank);
    NetworkController ctl(net, &an, kBank);
    ctl.set_placement_mode(PlacementMode::Incremental);
    if (verify) ctl.set_verify_placement(true);

    std::vector<double> wall_ms, model_ms;
    std::size_t n_slices = 0, placed_switches = 0;
    for (std::size_t i = 0; i < n_queries; ++i) {
      const uint64_t a = wall_ns();
      const auto& d = ctl.deploy(
          fleet_query("fleet" + std::to_string(i),
                      static_cast<uint16_t>(20'000 + i)));
      const uint64_t b = wall_ns();
      wall_ms.push_back(static_cast<double>(b - a) / 1e6);
      model_ms.push_back(d.total_latency_ms);
      n_slices = d.slices.size();
      placed_switches = d.placement.assignment.size();
    }
    const double ip50 = percentile(wall_ms, 0.50);
    const double ip99 = percentile(wall_ms, 0.99);
    const double mp50 = percentile(model_ms, 0.50);
    const double mp99 = percentile(model_ms, 0.99);
    std::printf("phase A: %zu queries x %zu slices, placement spans %zu "
                "switches\n",
                n_queries, n_slices, placed_switches);
    std::printf("  install wall    p50 %.2f ms  p99 %.2f ms\n", ip50, ip99);
    std::printf("  install modeled p50 %.2f ms  p99 %.2f ms\n", mp50, mp99);

    // --- phase B: re-placement scope, scratch baseline vs incremental ---
    ChurnResult scr;
    {
      Analyzer an2;
      Network net2(topo, stages, &an2, kBank);
      NetworkController ctl2(net2, &an2, kBank);
      ctl2.set_placement_mode(PlacementMode::Scratch);
      for (std::size_t i = 0; i < n_queries; ++i)
        ctl2.deploy(fleet_query("fleet" + std::to_string(i),
                                static_cast<uint16_t>(20'000 + i)));
      scr = run_churn(net2, ctl2, churn_events, seed);
    }
    const ChurnResult inc = run_churn(net, ctl, churn_events, seed);
    std::printf("phase B: %zu churn events (switch kill/restore + link "
                "flaps)\n",
                inc.events);
    std::printf("  scratch     scope avg %5.1f%%  wall/event %.3f ms\n",
                scr.scope_avg_frac * 100, scr.wall_ms_avg);
    std::printf("  incremental scope avg %5.1f%% (switch events %5.1f%%, max "
                "%5.1f%%), changed avg %.1f, wall/event %.3f ms\n",
                inc.scope_avg_frac * 100, inc.sw_scope_avg_frac * 100,
                inc.scope_max_frac * 100, inc.changed_avg, inc.wall_ms_avg);
    if (inc.wall_ms_avg > 0)
      std::printf("  re-placement speedup %.1fx\n",
                  scr.wall_ms_avg / inc.wall_ms_avg);

    // --- phase C: report volume through the aggregation tree ---
    Analyzer down;
    CountingSink root_count;
    root_count.down = &down;
    AggregationTree::Options topt;
    topt.fanin = fanin;
    topt.window_ns = 100'000'000;
    topt.attribution = &an;
    AggregationTree tree(topo, &root_count, topt);
    for (std::size_t i = 0; i < n_queries; ++i) {
      const std::string name = "fleet" + std::to_string(i);
      if (const auto* sl = ctl.slices_of(name))
        tree.set_merge_op(name, merge_op_for_slices(*sl));
    }
    for (int n : topo.switches())
      if (net.has_switch(n)) net.sw(n).set_sink(&tree);
    const std::vector<int> hosts = net.topo().hosts();
    const uint64_t c0 = wall_ns();
    for (std::size_t i = 0; i < trace.packets.size(); ++i)
      net.send(trace.packets[i],
               hosts[src_of(i, hosts.size())],
               hosts[dst_of(i, hosts.size())]);
    for (int n : net.topo().switches())
      if (net.has_switch(n)) net.sw(n).flush_telemetry();
    tree.flush();
    const uint64_t c1 = wall_ns();
    const AggregationTree::Stats& ts = tree.stats();
    const double compression =
        ts.root_records ? static_cast<double>(ts.reports_in) /
                              static_cast<double>(ts.root_records)
                        : 0.0;
    std::printf("phase C: %zu packets, agg tree depth %zu, %zu nodes, max "
                "fan-in %zu\n",
                trace.size(), ts.depth, ts.nodes, ts.max_fanin);
    std::printf("  leaf reports %llu -> root records %llu (%.1fx "
                "compression, %llu merged, %llu deferred passthrough), "
                "%.1f ms\n",
                static_cast<unsigned long long>(ts.reports_in),
                static_cast<unsigned long long>(ts.root_records),
                compression,
                static_cast<unsigned long long>(ts.merged_away),
                static_cast<unsigned long long>(ts.passthrough),
                static_cast<double>(c1 - c0) / 1e6);

    if (f)
      std::fprintf(
          f,
          "%s\n    {\"k\": %d, \"switches\": %zu, \"hosts\": %zu, "
          "\"links\": %zu,\n"
          "     \"queries\": %zu, \"slices\": %zu, "
          "\"placed_switches\": %zu,\n"
          "     \"install_wall_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n"
          "     \"install_model_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n"
          "     \"churn_events\": %zu,\n"
          "     \"scratch_scope_frac\": %.4f, "
          "\"scratch_wall_ms\": %.4f,\n"
          "     \"inc_scope_frac\": %.4f, \"inc_switch_scope_frac\": %.4f, "
          "\"inc_scope_max_frac\": %.4f,\n"
          "     \"inc_changed_avg\": %.2f, \"inc_wall_ms\": %.4f,\n"
          "     \"agg_fanin\": %zu, \"agg_depth\": %zu, "
          "\"agg_nodes\": %zu,\n"
          "     \"reports_in\": %llu, \"root_records\": %llu, "
          "\"compression\": %.2f,\n"
          "     \"packets\": %zu, \"verified\": %s}",
          first_k ? "" : ",", k, S, H, L, n_queries, n_slices,
          placed_switches, ip50, ip99, mp50, mp99, inc.events,
          scr.scope_avg_frac, scr.wall_ms_avg, inc.scope_avg_frac,
          inc.sw_scope_avg_frac, inc.scope_max_frac, inc.changed_avg,
          inc.wall_ms_avg, fanin, ts.depth, ts.nodes,
          static_cast<unsigned long long>(ts.reports_in),
          static_cast<unsigned long long>(ts.root_records), compression,
          trace.size(), verify ? "true" : "false");

    // CI gates apply to the first (smallest) arity.
    if (first_k) {
      if (max_touch_frac > 0 && inc.sw_scope_avg_frac > max_touch_frac) {
        std::fprintf(stderr,
                     "FAIL: incremental switch-churn scope %.1f%% > gate "
                     "%.1f%%\n",
                     inc.sw_scope_avg_frac * 100, max_touch_frac * 100);
        rc = 1;
      }
      if (max_install_ms > 0 && ip99 > max_install_ms) {
        std::fprintf(stderr, "FAIL: p99 install wall %.2f ms > gate %.2f ms\n",
                     ip99, max_install_ms);
        rc = 1;
      }
      if (scr.scope_avg_frac < 0.5) {
        std::fprintf(stderr,
                     "FAIL: scratch baseline scope %.1f%% — expected a "
                     "full-fabric recompute\n",
                     scr.scope_avg_frac * 100);
        rc = 1;
      }
    }
    first_k = false;
  }

  if (f) {
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_fleet.json\n");
  }
  return rc;
}
