// Ablation: concurrent-query scheduling (the §7 open problem).
//
// Offered load: a growing batch of monitoring intents over disjoint traffic
// classes, all requesting full-width sketches, on one 12-stage switch.
// Compared policies:
//   * FCFS, fixed width: install until something (registers) overflows,
//     reject the rest;
//   * scheduled: weighted width degradation admits every query that fits
//     structurally, trading sketch width for admission.
#include <cstdio>

#include "bench_util.h"
#include "core/scheduler.h"

using namespace newton;

namespace {

Query tenant_query(int i, std::size_t width) {
  // Tenant i monitors heavy receivers on its own service port.
  return QueryBuilder("tenant" + std::to_string(i))
      .sketch(2, width)
      .filter(Predicate{}
                  .where(Field::Proto, Cmp::Eq, kProtoTcp)
                  .where(Field::DstPort, Cmp::Eq,
                         static_cast<uint32_t>(2000 + i)))
      .map({Field::DstIp})
      .reduce({Field::DstIp}, Agg::Sum)
      .when(Cmp::Ge, 100)
      .build();
}

}  // namespace

int main() {
  const std::size_t kBank = 49'152;
  bench::header("Scheduler ablation: admitted tenants on one switch");
  std::printf("(12 stages, %zu registers/bank, every tenant asks for "
              "2x4096 counters)\n\n",
              kBank);
  std::printf("%8s | %12s | %12s %18s %14s\n", "offered", "FCFS admits",
              "sched admits", "min granted width", "peak bank use");
  bench::row_sep();

  for (int offered : {4, 8, 12, 16, 24, 32, 48, 64}) {
    // FCFS with fixed widths.
    std::size_t fcfs = 0;
    {
      NewtonSwitch sw(1, 12, nullptr, kBank);
      Controller ctl(sw);
      for (int i = 0; i < offered; ++i) {
        try {
          ctl.install(tenant_query(i, 4096));
          ++fcfs;
        } catch (const std::runtime_error&) {
          break;
        }
      }
    }

    // Weighted scheduling (earlier tenants weigh more).
    std::vector<ScheduleRequest> reqs;
    for (int i = 0; i < offered; ++i)
      reqs.push_back({tenant_query(i, 4096),
                      /*weight=*/1.0 + (i < offered / 2 ? 1.0 : 0.0)});
    SwitchProfile profile;
    profile.bank_registers = kBank;
    const SchedulePlan plan = schedule_queries(reqs, profile);

    std::size_t min_width = 0, admitted = 0;
    if (plan.feasible) {
      admitted = plan.entries.size();
      min_width = SIZE_MAX;
      for (const auto& e : plan.entries)
        min_width = std::min(min_width, e.granted_width);
      NewtonSwitch sw(1, 12, nullptr, kBank);
      Controller ctl(sw);
      apply_plan(ctl, plan);  // sanity: the plan actually installs
    }
    std::printf("%8d | %12zu | %12zu %18zu %14zu\n", offered, fcfs, admitted,
                min_width, plan.feasible ? plan.peak_bank_demand : 0);
  }
  std::printf(
      "\nFixed-width FCFS saturates the state banks and starts rejecting;\n"
      "the scheduler admits every structurally-fitting tenant by shrinking\n"
      "low-weight sketches (graceful accuracy degradation).\n");
  return 0;
}
