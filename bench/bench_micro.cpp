// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the compiler: hashing, sketch updates, table lookups, per-packet
// pipeline cost, and query compilation.
#include <benchmark/benchmark.h>

#include "core/compose.h"
#include "core/controller.h"
#include "core/cqe.h"
#include "core/newton_switch.h"
#include "core/queries.h"
#include "dataplane/forwarding.h"
#include "packet/wire.h"
#include "sketch/bloom.h"
#include "sketch/count_min.h"
#include "sketch/hash.h"
#include "trace/trace_gen.h"

namespace newton {
namespace {

void BM_HashCrc32(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(v = hash_u32(HashAlgo::Crc32, 1, v + 1));
}
BENCHMARK(BM_HashCrc32);

void BM_HashMix64(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(v = hash_u32(HashAlgo::Mix64, 1, v + 1));
}
BENCHMARK(BM_HashMix64);

void BM_CountMinUpdate(benchmark::State& state) {
  CountMin cm(static_cast<std::size_t>(state.range(0)), 4096);
  uint32_t k = 0;
  for (auto _ : state) benchmark::DoNotOptimize(cm.update(++k % 1024));
}
BENCHMARK(BM_CountMinUpdate)->Arg(2)->Arg(3)->Arg(6);

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter bf(3, 1 << 15);
  uint32_t k = 0;
  for (auto _ : state) benchmark::DoNotOptimize(bf.insert(++k % 4096));
}
BENCHMARK(BM_BloomInsert);

void BM_TernaryLookup(benchmark::State& state) {
  TernaryTable<int> t(256);
  for (int i = 0; i < state.range(0); ++i)
    t.insert({MatchWord::exact(static_cast<uint32_t>(i)),
              MatchWord::wildcard()},
             i, i);
  uint32_t k = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        t.lookup({++k % static_cast<uint32_t>(state.range(0)), 7}));
}
BENCHMARK(BM_TernaryLookup)->Arg(8)->Arg(64)->Arg(256);

void BM_SwitchProcessPacket(benchmark::State& state) {
  NewtonSwitch sw(1, 12, nullptr);
  sw.install(compile_query(make_q1()));
  const Packet p = make_packet(1, 2, 3, 4, kProtoTcp, kTcpSyn);
  for (auto _ : state) benchmark::DoNotOptimize(sw.process(p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchProcessPacket);

void BM_CompileQuery(benchmark::State& state) {
  const Query q =
      all_queries()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) benchmark::DoNotOptimize(compile_query(q));
}
BENCHMARK(BM_CompileQuery)->Arg(0)->Arg(3)->Arg(5)->Arg(7);

void BM_QueryInstallRemove(benchmark::State& state) {
  NewtonSwitch sw(1, 12, nullptr);
  const CompiledQuery cq = compile_query(make_q1());
  for (auto _ : state) {
    const auto res = sw.install(cq);
    sw.remove(res.handle);
  }
}
BENCHMARK(BM_QueryInstallRemove);

void BM_WireDeparseParse(benchmark::State& state) {
  const Packet p = make_packet(ipv4(10, 1, 2, 3), ipv4(172, 16, 9, 9), 1234,
                               443, kProtoTcp, kTcpSyn, 200);
  for (auto _ : state) {
    const auto frame = deparse_frame(p);
    benchmark::DoNotOptimize(parse_frame(frame));
  }
}
BENCHMARK(BM_WireDeparseParse);

void BM_LpmLookup(benchmark::State& state) {
  LpmTable t;
  for (int i = 0; i < state.range(0); ++i)
    t.insert((10u << 24) | (static_cast<uint32_t>(i) << 8), 24,
             static_cast<uint32_t>(i % 64));
  t.insert(0, 0, 63);
  uint32_t ip = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(t.lookup((10u << 24) | (++ip % 60'000)));
}
BENCHMARK(BM_LpmLookup)->Arg(1'000)->Arg(10'000)->Arg(60'000);

void BM_SliceQuery(benchmark::State& state) {
  CompileOptions opts;
  opts.opt3 = false;
  const CompiledQuery cq = compile_query(make_q1(), opts);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        slice_query(cq, static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_SliceQuery)->Arg(3)->Arg(6);

void BM_SwitchProcessConcurrentQueries(benchmark::State& state) {
  NewtonSwitch sw(1, 12, nullptr, 1 << 18);
  Controller ctl(sw);
  for (int i = 0; i < state.range(0); ++i) {
    Query q = QueryBuilder("t" + std::to_string(i))
                  .sketch(2, 64)
                  .filter(Predicate{}
                              .where(Field::Proto, Cmp::Eq, kProtoTcp)
                              .where(Field::DstPort, Cmp::Eq,
                                     static_cast<uint32_t>(1000 + i)))
                  .map({Field::DstIp})
                  .reduce({Field::DstIp}, Agg::Sum)
                  .when(Cmp::Ge, 100)
                  .build();
    ctl.install(q);
  }
  const Packet p = make_packet(1, 2, 3, 1000, kProtoTcp, kTcpAck);
  for (auto _ : state) benchmark::DoNotOptimize(sw.process(p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchProcessConcurrentQueries)->Arg(1)->Arg(16)->Arg(64);

}  // namespace
}  // namespace newton

BENCHMARK_MAIN();
