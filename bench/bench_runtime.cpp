// Sharded-runtime throughput: packets/sec vs. shard count on a ~1M-packet
// trace, with q1/q3/q5 installed and 5-tuple flow sharding.
//
// Two metrics per shard count:
//   wall_pps   packets / wall-clock ns of the run.  On a single-core host
//              all threads serialize, so this stays roughly flat.
//   model_pps  packets / critical-path CPU ns, where the critical path is
//              max(demux thread CPU, busiest worker CPU).  With one core
//              per thread this is the wall-clock the architecture achieves,
//              so the shard-scaling claim is made on this metric and the
//              host core count is recorded in the JSON.
//
// Writes BENCH_runtime.json next to the working directory, including a
// telemetry block (the global registry's snapshot of the metrics-target
// run: per-stage packet counters, module rule hits, ring stalls, the
// window-merge histogram — see docs/telemetry.md).
//
//   bench_runtime [--shards N]        run {1, N}, capture metrics at N shards
//                                     (default sweep 1/2/4/8, metrics at 4)
//                [--burst B1,B2,...]  also sweep the hot-path batch size at
//                                     the metrics shard count (default: the
//                                     production burst 64 only)
//                [--packets N]        trace size override (CI smoke: 100000)
//                [--pcap FILE]        benchmark a real capture instead of
//                                     the synthetic trace (tiled in time up
//                                     to the --packets target)
//                [--min-wall-speedup X]  exit 1 if the metrics-shard wall
//                                     speedup over 1 shard lands below X
//                [--min-jit-speedup X]  exit 1 if the single-shard model-pps
//                                     gain of the compiled executors
//                                     (src/compile/) over the interpreter
//                                     lands below X
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "core/newton_switch.h"
#include "core/queries.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/telemetry.h"
#include "trace/pcap.h"

namespace newton {
namespace {

uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t wall_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Tile the base trace in time until it holds `target` packets, then trim.
Trace tile_to(Trace base, std::size_t target) {
  const uint64_t period = base.duration_ns() + 1'000'000;  // 1ms guard gap
  const std::size_t base_n = base.size();
  Trace out = std::move(base);
  out.packets.reserve(target);
  for (uint64_t k = 1; out.size() < target; ++k) {
    for (std::size_t i = 0; i < base_n && out.size() < target; ++i) {
      Packet p = out.packets[i];
      p.ts_ns += k * period;
      out.packets.push_back(p);
    }
  }
  out.packets.resize(target);
  return out;
}

struct Sample {
  std::size_t shards = 0;
  std::size_t burst = 0;
  bool jit = true;
  bool mlp = true;  // three-phase burst schedule on (false = op-major)
  uint64_t jit_packets = 0;
  uint64_t jit_fused_packets = 0;
  uint64_t jit_hash_lanes = 0;
  uint64_t jit_hash_cse_lanes = 0;
  uint64_t jit_prefetch_issued = 0;
  uint64_t wall = 0;
  uint64_t demux_cpu = 0;
  uint64_t max_worker_cpu = 0;
  std::vector<uint64_t> worker_cpu;
  uint64_t stalls = 0;
  uint64_t reports = 0;
  uint64_t failovers = 0;
  uint64_t redistributed = 0;
  uint64_t abandoned = 0;
  std::size_t live_shards = 0;
  double wall_pps = 0.0;
  double model_pps = 0.0;
};

// 0 = executor default (ExecOptions::prefetch_distance); overridable with
// --prefetch-distance.
std::size_t g_prefetch_distance = 0;

Sample run_one(const Trace& t, std::size_t shards, std::size_t burst,
               bool jit = true, bool mlp = true) {
  // One run at a time in the global registry, so the exported metrics
  // block describes exactly the metrics-target run.
  telemetry::Registry::global().reset();
  NewtonSwitch sw(1, 24, nullptr);
  RuntimeOptions o;
  o.num_shards = shards;
  o.queue_capacity = 8192;
  o.burst = burst;
  o.record_snapshots = false;  // measuring the data path, not the observer
  o.jit = jit;
  if (g_prefetch_distance != 0) o.prefetch_distance = g_prefetch_distance;
  if (!mlp) {  // isolate the memory-level-parallelism pass: compiled
    o.jit_burst_schedule = false;  // executors, pre-MLP op-major execution
    o.jit_hash_cse = false;
    o.prefetch_distance = 0;
  }
  ShardedRuntime rt(sw, o);
  QueryParams p;
  rt.install(make_q1(p));
  rt.install(make_q3(p));
  rt.install(make_q5(p));

  const uint64_t w0 = wall_ns();
  const uint64_t c0 = thread_cpu_ns();
  rt.run(t);
  rt.finish();
  const uint64_t c1 = thread_cpu_ns();
  const uint64_t w1 = wall_ns();

  Sample s;
  s.shards = shards;
  s.burst = burst;
  s.jit = jit;
  s.mlp = mlp;
  s.wall = w1 - w0;
  s.demux_cpu = c1 - c0;
  const RuntimeStats& st = rt.stats();
  for (const WorkerStats& ws : st.workers) {
    s.worker_cpu.push_back(ws.busy_ns);
    if (ws.busy_ns > s.max_worker_cpu) s.max_worker_cpu = ws.busy_ns;
    s.jit_packets += ws.jit_packets;
    s.jit_fused_packets += ws.jit_fused_packets;
    s.jit_hash_lanes += ws.jit_hash_lanes;
    s.jit_hash_cse_lanes += ws.jit_hash_cse_lanes;
    s.jit_prefetch_issued += ws.jit_prefetch_issued;
  }
  s.stalls = st.backpressure_stalls;
  s.reports = st.reports;
  s.failovers = st.worker_failovers;
  s.redistributed = st.redistributed_packets;
  s.abandoned = st.abandoned_packets;
  s.live_shards = st.live_shards;
  const double n = static_cast<double>(t.size());
  s.wall_pps = n * 1e9 / static_cast<double>(s.wall);
  const uint64_t crit = std::max(s.demux_cpu, s.max_worker_cpu);
  s.model_pps = n * 1e9 / static_cast<double>(crit);
  return s;
}

}  // namespace
}  // namespace newton

int main(int argc, char** argv) {
  using namespace newton;
  bench::header("Sharded runtime throughput vs. shard count");

  constexpr std::size_t kDefaultBurst = 64;
  std::size_t metrics_shards = 4;
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<std::size_t> burst_sweep;  // extra bursts at metrics_shards
  std::size_t packets_override = 0;
  std::string pcap_path;  // real-capture input instead of the generator
  double min_wall_speedup = 0.0;  // 0 = no gate
  double min_jit_speedup = 0.0;   // 0 = no gate
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      metrics_shards = static_cast<std::size_t>(std::atol(argv[++i]));
      if (metrics_shards == 0) metrics_shards = 1;
      shard_counts = {1};
      if (metrics_shards != 1) shard_counts.push_back(metrics_shards);
    } else if (std::strcmp(argv[i], "--burst") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) burst_sweep.push_back(static_cast<std::size_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets_override = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--pcap") == 0 && i + 1 < argc) {
      pcap_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-wall-speedup") == 0 &&
               i + 1 < argc) {
      min_wall_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-jit-speedup") == 0 &&
               i + 1 < argc) {
      min_jit_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--prefetch-distance") == 0 &&
               i + 1 < argc) {
      g_prefetch_distance = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_runtime [--shards N] [--burst B1,B2,...] "
                   "[--packets N] [--pcap FILE] [--prefetch-distance D] "
                   "[--min-wall-speedup X] [--min-jit-speedup X]\n");
      return 2;
    }
  }

  const std::size_t target =
      packets_override != 0 ? packets_override
                            : (bench::full_scale() ? 4'000'000 : 1'000'000);
  Trace base;
  if (!pcap_path.empty()) {
    PcapLoadStats pst;
    base = load_pcap(pcap_path, &pst);
    std::printf("pcap %s: %llu frame(s), skipped %llu (vlan %llu, ipv6 "
                "%llu, other %llu)\n",
                pcap_path.c_str(),
                static_cast<unsigned long long>(pst.frames),
                static_cast<unsigned long long>(pst.skipped),
                static_cast<unsigned long long>(pst.skipped_vlan),
                static_cast<unsigned long long>(pst.skipped_ipv6),
                static_cast<unsigned long long>(pst.skipped_other));
  } else {
    TraceProfile prof = caida_like(7);
    prof.num_flows = 30'000;
    base = generate_trace(prof);
    std::mt19937 rng(1007);
    inject_syn_flood(base, ipv4(172, 16, 200, 1), 300, 1, 50'000'000, rng);
    inject_udp_flood(base, ipv4(172, 16, 200, 3), 120, 2, 250'000'000, rng);
    inject_super_spreader(base, ipv4(198, 18, 4, 4), 150, 550'000'000, rng);
    base.sort_by_time();
  }
  const Trace t = tile_to(std::move(base), target);
  std::printf("trace: %zu packets, %.2fs span, host cores: %u\n", t.size(),
              static_cast<double>(t.duration_ns()) / 1e9,
              std::thread::hardware_concurrency());

  const auto print_sample = [](const Sample& s) {
    std::printf(
        "shards=%zu  burst=%3zu  jit=%s  wall=%7.1f ms  wall_pps=%9.0f  "
        "model_pps=%9.0f  demux_cpu=%6.1f ms  max_worker_cpu=%6.1f ms  "
        "stalls=%llu\n",
        s.shards, s.burst, !s.jit ? "off" : s.mlp ? "on " : "mlp-off",
        s.wall / 1e6, s.wall_pps,
        s.model_pps, s.demux_cpu / 1e6, s.max_worker_cpu / 1e6,
        static_cast<unsigned long long>(s.stalls));
  };

  std::vector<Sample> samples;
  std::string metrics_json;
  for (std::size_t n : shard_counts) {
    Sample s = run_one(t, n, kDefaultBurst);
    if (n == metrics_shards || metrics_json.empty())
      metrics_json =
          telemetry::to_json(telemetry::Registry::global().snapshot(), 2);
    print_sample(s);
    samples.push_back(std::move(s));
  }

  // Burst sweep at the metrics shard count: how much of the throughput is
  // bought by batching alone (burst 1 = the pre-batching handoff).
  std::vector<Sample> burst_samples;
  for (std::size_t b : burst_sweep) {
    Sample s = run_one(t, metrics_shards, b);
    print_sample(s);
    burst_samples.push_back(std::move(s));
  }
  // Compiled-vs-interpreted executors (src/compile/): re-run the
  // single-shard workload with the chain JIT off.  model_pps at n=1 is
  // pure executor cost, so the ratio is the compiled-path speedup.
  const Sample sji = run_one(t, 1, kDefaultBurst, /*jit=*/false);
  print_sample(sji);
  // Memory-level-parallelism pass in isolation: jit on, but the whole
  // three-phase burst schedule off — the pre-MLP op-major executors.
  const Sample smlp = run_one(t, 1, kDefaultBurst, /*jit=*/true,
                              /*mlp=*/false);
  print_sample(smlp);
  bench::row_sep();

  const Sample& s1 = samples[0];
  const Sample* speedup_sample = &samples.back();
  for (const Sample& s : samples)
    if (s.shards == metrics_shards) speedup_sample = &s;
  const Sample& sN = *speedup_sample;
  const double speedup_model = sN.model_pps / s1.model_pps;
  const double speedup_wall = sN.wall_pps / s1.wall_pps;
  std::printf("%zu-shard speedup: model %.2fx, wall %.2fx\n", sN.shards,
              speedup_model, speedup_wall);
  const double speedup_jit = s1.model_pps / sji.model_pps;
  std::printf("1-shard jit speedup: model %.2fx (compiled %llu/%zu packets, "
              "fused %llu)\n",
              speedup_jit,
              static_cast<unsigned long long>(s1.jit_packets), t.size(),
              static_cast<unsigned long long>(s1.jit_fused_packets));
  const double speedup_mlp = s1.model_pps / smlp.model_pps;
  std::printf("1-shard mlp speedup: model %.2fx (hash lanes %llu, cse-saved "
              "%llu, prefetch %llu)\n",
              speedup_mlp,
              static_cast<unsigned long long>(s1.jit_hash_lanes),
              static_cast<unsigned long long>(s1.jit_hash_cse_lanes),
              static_cast<unsigned long long>(s1.jit_prefetch_issued));

  FILE* f = std::fopen("BENCH_runtime.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sharded_runtime\",\n");
  std::fprintf(f, "  \"packets\": %zu,\n", t.size());
  std::fprintf(f, "  \"queries\": [\"q1_new_tcp\", \"q3_super_spreader\", "
                  "\"q5_udp_ddos\"],\n");
  std::fprintf(f, "  \"shard_key\": \"five_tuple\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"metric_note\": \"model_pps = packets / "
                  "max(demux_cpu, busiest worker_cpu); equals wall-clock "
                  "throughput when each thread has its own core\",\n");
  const auto write_sample = [f](const Sample& s, bool last) {
    std::fprintf(f,
                 "    {\"n\": %zu, \"burst\": %zu, \"wall_ns\": %llu, "
                 "\"wall_pps\": %.0f, \"model_pps\": %.0f, "
                 "\"demux_cpu_ns\": %llu, \"worker_cpu_ns\": [",
                 s.shards, s.burst, static_cast<unsigned long long>(s.wall),
                 s.wall_pps, s.model_pps,
                 static_cast<unsigned long long>(s.demux_cpu));
    for (std::size_t j = 0; j < s.worker_cpu.size(); ++j)
      std::fprintf(f, "%s%llu", j ? ", " : "",
                   static_cast<unsigned long long>(s.worker_cpu[j]));
    std::fprintf(f,
                 "], \"backpressure_stalls\": %llu, \"reports\": %llu, "
                 "\"worker_failovers\": %llu, \"redistributed_packets\": "
                 "%llu, \"abandoned_packets\": %llu, \"live_shards\": %zu}%s\n",
                 static_cast<unsigned long long>(s.stalls),
                 static_cast<unsigned long long>(s.reports),
                 static_cast<unsigned long long>(s.failovers),
                 static_cast<unsigned long long>(s.redistributed),
                 static_cast<unsigned long long>(s.abandoned), s.live_shards,
                 last ? "" : ",");
  };

  std::fprintf(f, "  \"shards\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i)
    write_sample(samples[i], i + 1 == samples.size());
  std::fprintf(f, "  ],\n");
  if (!burst_samples.empty()) {
    std::fprintf(f, "  \"burst_sweep\": [\n");
    for (std::size_t i = 0; i < burst_samples.size(); ++i)
      write_sample(burst_samples[i], i + 1 == burst_samples.size());
    std::fprintf(f, "  ],\n");
  }
  // Compiled-executor block: the jit-off leg re-runs n=1 with the same
  // trace/burst, so model_pps ratio isolates the executor swap.
  std::fprintf(f, "  \"jit\": {\n");
  std::fprintf(f, "    \"enabled_default\": true,\n");
  std::fprintf(f, "    \"model_pps_1shard\": %.0f,\n", s1.model_pps);
  std::fprintf(f, "    \"model_pps_1shard_nojit\": %.0f,\n", sji.model_pps);
  std::fprintf(f, "    \"speedup_model_1shard\": %.3f,\n", speedup_jit);
  std::fprintf(f, "    \"jit_packets\": %llu,\n",
               static_cast<unsigned long long>(s1.jit_packets));
  std::fprintf(f, "    \"jit_fused_packets\": %llu\n",
               static_cast<unsigned long long>(s1.jit_fused_packets));
  std::fprintf(f, "  },\n");
  // Memory-level-parallelism pass (batched hashing + hash-CSE + state
  // prefetch, docs/compile.md): the mlp-off leg runs the same compiled
  // executors with the burst schedule fully disabled (plain op-major).
  std::fprintf(f, "  \"mlp\": {\n");
  std::fprintf(f, "    \"model_pps_1shard\": %.0f,\n", s1.model_pps);
  std::fprintf(f, "    \"model_pps_1shard_mlp_off\": %.0f,\n",
               smlp.model_pps);
  std::fprintf(f, "    \"speedup_model_1shard\": %.3f,\n", speedup_mlp);
  std::fprintf(f, "    \"hash_lanes\": %llu,\n",
               static_cast<unsigned long long>(s1.jit_hash_lanes));
  std::fprintf(f, "    \"hash_cse_lanes_saved\": %llu,\n",
               static_cast<unsigned long long>(s1.jit_hash_cse_lanes));
  std::fprintf(f, "    \"prefetch_issued\": %llu\n",
               static_cast<unsigned long long>(s1.jit_prefetch_issued));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_model_%zushard\": %.3f,\n", sN.shards,
               speedup_model);
  std::fprintf(f, "  \"speedup_wall_%zushard\": %.3f,\n", sN.shards,
               speedup_wall);
  // Wall-clock trajectory across the repo's own history, for the perf PR's
  // before/after record (same 1M-packet workload, single-core CI host).
  // "seed" is the pre-batching runtime: item-at-a-time ring handoff,
  // per-packet heap allocation in the match path, linear table scans.
  std::fprintf(f, "  \"baseline_trajectory\": {\n");
  std::fprintf(f, "    \"seed\": {\"wall_pps_1shard\": 1283796, "
                  "\"wall_pps_4shard\": 1195747, "
                  "\"speedup_wall_4shard\": 0.931, "
                  "\"speedup_model_4shard\": 3.707},\n");
  std::fprintf(f, "    \"current\": {\"wall_pps_1shard\": %.0f, "
                  "\"wall_pps_%zushard\": %.0f, "
                  "\"speedup_wall_%zushard\": %.3f, "
                  "\"speedup_model_%zushard\": %.3f}\n",
               s1.wall_pps, sN.shards, sN.wall_pps, sN.shards, speedup_wall,
               sN.shards, speedup_model);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"metrics_shards\": %zu,\n", metrics_shards);
  std::fprintf(f, "  \"metrics\": %s\n", metrics_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_runtime.json\n");

  if (min_wall_speedup > 0.0 && speedup_wall < min_wall_speedup) {
    std::fprintf(stderr,
                 "FAIL: %zu-shard wall speedup %.3f < required %.3f\n",
                 sN.shards, speedup_wall, min_wall_speedup);
    return 1;
  }
  if (min_jit_speedup > 0.0 && speedup_jit < min_jit_speedup) {
    std::fprintf(stderr,
                 "FAIL: 1-shard jit model speedup %.3f < required %.3f\n",
                 speedup_jit, min_jit_speedup);
    return 1;
  }
  return 0;
}
