// Churn-storm robustness bench (ROADMAP item 2, docs/admission.md).
//
// Newton's claim over recompile-and-redeploy systems is that tenants
// install and withdraw queries at runtime without disturbing the data
// plane.  This bench abuses that claim at production shape and reports
// whether the control plane keeps up:
//
//   phase 1  concurrency + churn under load: install >= 100 concurrent
//            disjoint-traffic tenant queries through the sharded runtime,
//            then stream an attack-mix trace while queueing
//            install+withdraw churn pairs (plus periodic inadmissible
//            installs that admission must bounce without residue) at
//            every window barrier.  Reports sustained churn ops/min,
//            concurrent query count, rejected installs, and how many JIT
//            rebuilds the debounce coalesced the mutation storm into.
//   phase 2  install-latency SLO: on the still-loaded switch, run direct
//            controller install+withdraw cycles and report the wall and
//            modeled install-latency distribution (p50/p95/p99).
//   phase 3  fragmentation + online compaction: withdraw every other base
//            query to fragment the register banks, report the gauges
//            (free / largest block / stranded), run Controller::compact()
//            and report moves and the stranded count it recovered.
//
//   bench_churn [--queries N]        concurrent base queries (default 110)
//               [--packets N]        trace size (default 200000)
//               [--pairs N]          churn install+withdraw pairs per window
//               [--shards N]         runtime shards (default 2)
//               [--latency-ops N]    phase-2 install samples (default 200)
//               [--min-ops-per-min X]  exit 1 if sustained churn ops/min
//                                    lands below X (CI gate: 200)
//               [--max-p99-ms X]     exit 1 if phase-2 p99 wall install
//                                    latency exceeds X ms (CI gate)
//
// Writes BENCH_churn.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "bench_util.h"
#include "core/controller.h"
#include "core/newton_switch.h"
#include "core/query.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/telemetry.h"

namespace newton {
namespace {

uint64_t wall_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// A small disjoint-traffic query: every instance filters its own dst port,
// so the scheduler multiplexes them P-Newton style and a hundred of them
// fit one pipeline.  The when-threshold is unreachable — this bench
// measures the control plane, not report volume.
Query small_query(const std::string& name, uint16_t dport,
                  std::size_t width = 256) {
  QueryBuilder b(name);
  b.sketch(2, width);
  b.filter(Predicate{}.where(Field::DstPort, Cmp::Eq, dport))
      .map({Field::SrcIp})
      .reduce({Field::SrcIp}, Agg::Sum)
      .when(Cmp::Ge, 1'000'000'000u);
  Query q = b.build();
  q.window_ns = 100'000'000;
  q.row_partitions = 1;
  return q;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

}  // namespace
}  // namespace newton

int main(int argc, char** argv) {
  using namespace newton;
  std::size_t n_queries = 110;
  std::size_t n_packets = 200'000;
  std::size_t pairs_per_window = 3;
  std::size_t shards = 2;
  std::size_t latency_ops = 200;
  double min_ops_per_min = 0.0;
  double max_p99_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--queries" && has_next)
      n_queries = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--packets" && has_next)
      n_packets = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--pairs" && has_next)
      pairs_per_window = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--shards" && has_next)
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--latency-ops" && has_next)
      latency_ops = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (a == "--min-ops-per-min" && has_next)
      min_ops_per_min = std::atof(argv[++i]);
    else if (a == "--max-p99-ms" && has_next)
      max_p99_ms = std::atof(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: bench_churn [--queries N] [--packets N] "
                   "[--pairs N] [--shards N] [--latency-ops N]\n"
                   "                   [--min-ops-per-min X] "
                   "[--max-p99-ms X]\n");
      return 2;
    }
  }

  bench::header("churn storm: admission + churn + compaction (ISSUE 8)");
  telemetry::Registry::global().reset();

  Trace t = generate_trace(bench::bench_caida(7));
  if (t.size() > n_packets) {
    t.packets.resize(n_packets);
  } else {
    // Tile in time up to the target so every run sees the same density.
    const uint64_t period = t.duration_ns() + 1'000'000;
    const std::size_t base_n = t.size();
    for (uint64_t k = 1; t.size() < n_packets; ++k)
      for (std::size_t i = 0; i < base_n && t.size() < n_packets; ++i) {
        Packet p = t.packets[i];
        p.ts_ns += k * period;
        t.packets.push_back(p);
      }
  }

  Analyzer an;
  NewtonSwitch sw(1, 64, &an, 1 << 18);
  RuntimeOptions ro;
  ro.num_shards = shards;
  ro.record_snapshots = false;
  ShardedRuntime rt(sw, ro, &an);

  // --- phase 1: load the switch, then churn while traffic flows ---
  for (std::size_t i = 0; i < n_queries; ++i)
    rt.install(small_query("base" + std::to_string(i),
                           static_cast<uint16_t>(20'000 + i)),
               {}, "tenant" + std::to_string(i % 8));
  rt.start();

  const uint64_t wns = sw.window_ns();
  uint64_t seen_epoch = ~0ull;
  std::size_t window_idx = 0;
  std::size_t churn_idx = 0, churn_installs = 0, churn_withdrawals = 0;
  const uint64_t w0 = wall_ns();
  for (const Packet& p : t.packets) {
    const uint64_t epoch = p.ts_ns / wns;
    if (epoch != seen_epoch) {
      seen_epoch = epoch;
      // Queue this window's churn batch: admissible install+withdraw
      // pairs, plus every other window one hopeless install (a register
      // demand no bank can hold) that admission must reject cleanly.
      for (std::size_t j = 0; j < pairs_per_window; ++j, ++churn_idx) {
        const std::string name = "churn" + std::to_string(churn_idx);
        rt.install(small_query(name,
                               static_cast<uint16_t>(30'000 + churn_idx % 1024)),
                   {}, "churn-tenant");
        rt.withdraw(name);
        ++churn_installs;
        ++churn_withdrawals;
      }
      if (window_idx++ % 2 == 0) {
        rt.install(small_query("doomed" + std::to_string(churn_idx),
                               static_cast<uint16_t>(50'000),
                               std::size_t{1} << 21),
                   {}, "churn-tenant");
      }
    }
    rt.process(p);
  }
  rt.finish();
  const uint64_t w1 = wall_ns();

  const RuntimeStats& st = rt.stats();
  const double wall_s = static_cast<double>(w1 - w0) / 1e9;
  const std::size_t churn_ops = churn_installs + churn_withdrawals;
  const double ops_per_min = static_cast<double>(churn_ops) / (wall_s / 60.0);
  const std::size_t concurrent = rt.controller().num_installed();

  std::printf("phase 1: %zu concurrent queries, %zu packets, %zu shards\n",
              concurrent, t.size(), shards);
  std::printf("  churn: %zu installs + %zu withdrawals in %.2f s = "
              "%.0f ops/min\n",
              churn_installs, churn_withdrawals, wall_s, ops_per_min);
  std::printf("  rejected (inadmissible) installs: %llu   windows: %llu   "
              "jit recompiles: %llu\n",
              static_cast<unsigned long long>(st.installs_rejected),
              static_cast<unsigned long long>(st.windows),
              static_cast<unsigned long long>(st.jit_recompiles));
  if (concurrent < n_queries) {
    std::fprintf(stderr, "FAIL: base queries fell below %zu\n", n_queries);
    return 1;
  }

  // --- phase 2: install-latency distribution on the loaded switch ---
  Controller& ctl = rt.controller();
  std::vector<double> wall_ms, model_ms;
  for (std::size_t i = 0; i < latency_ops; ++i) {
    const std::string name = "lat" + std::to_string(i);
    const uint64_t a = wall_ns();
    const Controller::OpStats ins = ctl.install(
        small_query(name, static_cast<uint16_t>(40'000 + i % 1024)), {},
        "slo-tenant");
    const uint64_t b = wall_ns();
    ctl.remove(name);
    wall_ms.push_back(static_cast<double>(b - a) / 1e6);
    model_ms.push_back(ins.latency_ms);
  }
  const double p50w = percentile(wall_ms, 0.50);
  const double p95w = percentile(wall_ms, 0.95);
  const double p99w = percentile(wall_ms, 0.99);
  const double p99m = percentile(model_ms, 0.99);
  std::printf("phase 2: install latency over %zu ops on the loaded switch\n",
              latency_ops);
  std::printf("  wall    p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n", p50w, p95w,
              p99w);
  std::printf("  modeled p99 %.3f ms (control-channel cost model)\n", p99m);

  // --- phase 3: fragment the banks, then compact ---
  for (std::size_t i = 0; i < n_queries; i += 2)
    ctl.remove("base" + std::to_string(i));
  const Controller::FragStats before = ctl.fragmentation();
  const Controller::CompactStats cs = ctl.compact();
  const Controller::FragStats after = ctl.fragmentation();
  std::printf("phase 3: withdrew %zu queries to fragment, then compacted\n",
              (n_queries + 1) / 2);
  std::printf("  before: free %zu, largest block %zu, stranded %zu\n",
              before.free_registers, before.largest_free_block,
              before.stranded_registers);
  std::printf("  compact: %zu/%zu queries moved, %zu rule ops, %.2f ms\n",
              cs.moved, cs.examined, cs.rule_ops, cs.latency_ms);
  std::printf("  after:  free %zu, largest block %zu, stranded %zu\n",
              after.free_registers, after.largest_free_block,
              after.stranded_registers);

  FILE* f = std::fopen("BENCH_churn.json", "w");
  if (f) {
    std::fprintf(f,
                 "{\n"
                 "  \"concurrent_queries\": %zu,\n"
                 "  \"packets\": %zu,\n"
                 "  \"shards\": %zu,\n"
                 "  \"churn_installs\": %zu,\n"
                 "  \"churn_withdrawals\": %zu,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"ops_per_min\": %.1f,\n"
                 "  \"rejected_installs\": %llu,\n"
                 "  \"windows\": %llu,\n"
                 "  \"jit_recompiles\": %llu,\n"
                 "  \"install_wall_ms\": {\"p50\": %.4f, \"p95\": %.4f, "
                 "\"p99\": %.4f},\n"
                 "  \"install_model_ms_p99\": %.4f,\n"
                 "  \"frag_stranded_before\": %zu,\n"
                 "  \"frag_stranded_after\": %zu,\n"
                 "  \"compaction_moves\": %zu\n"
                 "}\n",
                 concurrent, t.size(), shards, churn_installs,
                 churn_withdrawals, wall_s, ops_per_min,
                 static_cast<unsigned long long>(st.installs_rejected),
                 static_cast<unsigned long long>(st.windows),
                 static_cast<unsigned long long>(st.jit_recompiles),
                 p50w, p95w, p99w, p99m, before.stranded_registers,
                 after.stranded_registers, cs.moved);
    std::fclose(f);
    std::printf("wrote BENCH_churn.json\n");
  }

  int rc = 0;
  if (min_ops_per_min > 0 && ops_per_min < min_ops_per_min) {
    std::fprintf(stderr, "FAIL: %.0f churn ops/min < gate %.0f\n", ops_per_min,
                 min_ops_per_min);
    rc = 1;
  }
  if (max_p99_ms > 0 && p99w > max_p99_ms) {
    std::fprintf(stderr, "FAIL: p99 install wall latency %.3f ms > gate %.3f ms\n",
                 p99w, max_p99_ms);
    rc = 1;
  }
  if (st.installs_rejected == 0) {
    std::fprintf(stderr, "FAIL: expected at least one admission rejection\n");
    rc = 1;
  }
  return rc;
}
