// Figure 11: Newton query installation and removal delay, Q1-Q9, repeated
// 100 times each (box-plot statistics).  Query operations are table-rule
// batches and complete within ~20 ms; installation of small queries (Q1)
// can be as low as ~5 ms.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "core/queries.h"

using namespace newton;

namespace {

struct Stats {
  double min, p25, median, p75, p95, max;
};

Stats stats_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) { return v[static_cast<std::size_t>(q * (v.size() - 1))]; };
  return {v.front(), at(0.25), at(0.5), at(0.75), at(0.95), v.back()};
}

}  // namespace

int main() {
  const int kRepeats = 100;
  QueryParams params;
  params.sketch_width = 1024;
  const auto queries = all_queries(params);

  bench::header("Figure 11: query install / removal delay (ms, 100 repeats)");
  std::printf("%6s %7s | %7s %7s %7s %7s | %7s %7s %7s %7s\n", "query",
              "rules", "ins_min", "ins_med", "ins_p95", "ins_max", "rm_min",
              "rm_med", "rm_p95", "rm_max");
  bench::row_sep();

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> ins, rm;
    std::size_t rules = 0;
    // 24 stages: Q8's serialized sub-queries fit without CQE, keeping the
    // measurement about rule-batch latency.
    NewtonSwitch sw(1, 24, nullptr, 1 << 16,
                    /*latency_seed=*/100 + static_cast<uint32_t>(qi));
    Controller ctl(sw);
    for (int r = 0; r < kRepeats; ++r) {
      const auto i = ctl.install(queries[qi]);
      const auto d = ctl.remove(queries[qi].name);
      ins.push_back(i.latency_ms);
      rm.push_back(d.latency_ms);
      rules = i.rule_ops;
    }
    const Stats si = stats_of(ins), sr = stats_of(rm);
    std::printf("Q%-5zu %7zu | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f\n",
                qi + 1, rules, si.min, si.median, si.p95, si.max, sr.min,
                sr.median, sr.p95, sr.max);
  }
  std::printf("\nAll operations complete within dozens of milliseconds; "
              "forwarding is never interrupted (see bench_fig10).\n");
  return 0;
}
