// Figure 16: resource multiplexing with concurrent Q4-like queries.
//
// Sonata chains query programs, so tables and stages grow linearly with the
// query count; S-Newton (all queries over the SAME traffic) also chains
// stage ranges; P-Newton (queries over DISJOINT traffic) multiplexes the
// same module instances with new table rules, so occupied module slots and
// stages stay constant up to the 256-rule capacity.
#include <cstdio>

#include "baselines/sonata.h"
#include "bench_util.h"
#include "core/controller.h"
#include "core/queries.h"

using namespace newton;

namespace {

// Q4's logic parameterized by the traffic class it watches.
Query q4_for_port(int i, bool same_traffic) {
  QueryBuilder b("q4_" + std::to_string(i));
  b.sketch(2, 64);
  Predicate pred;
  pred.where(Field::Proto, Cmp::Eq, kProtoTcp);
  if (!same_traffic)
    pred.where(Field::DstPort, Cmp::Eq, static_cast<uint32_t>(1000 + i));
  else
    pred.where(Field::TcpFlags, Cmp::Eq, kTcpSyn);
  return b.filter(std::move(pred))
      .map({Field::SrcIp, Field::DstPort})
      .distinct({Field::SrcIp, Field::DstPort})
      .map({Field::SrcIp})
      .reduce({Field::SrcIp}, Agg::Sum)
      .when(Cmp::Ge, 50)
      .build();
}

}  // namespace

int main() {
  bench::header("Figure 16: concurrent Q4 queries — modules & stages");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "queries",
              "Sonata_tab", "Sonata_stg", "S-N_slots", "S-N_stages",
              "P-N_slots", "P-N_stages");
  bench::row_sep();

  const SonataFootprint one = estimate_sonata(q4_for_port(0, false));

  // S-Newton: install on one deep virtual pipeline (chaining grows stages
  // beyond any real switch; the trend is the point).  Small state banks:
  // this experiment is about table/stage footprints.
  NewtonSwitch s_newton(1, 1024, nullptr, /*bank=*/1024);
  Controller s_ctl(s_newton);
  // P-Newton: disjoint traffic multiplexes a 12-stage switch.
  NewtonSwitch p_newton(2, 12, nullptr, /*bank=*/1 << 15);
  Controller p_ctl(p_newton);

  int installed = 0;
  for (int n : {1, 5, 10, 20, 40, 60, 80, 100}) {
    for (; installed < n; ++installed) {
      CompileOptions deep;
      deep.max_stages = 1024;  // chained ranges exceed the default bound
      s_ctl.install(q4_for_port(installed, /*same=*/true), deep);
      p_ctl.install(q4_for_port(installed, /*same=*/false));
    }
    std::printf("%8d | %10zu %10zu | %10zu %10zu | %10zu %10zu\n", n,
                one.tables * n, one.stages * n, s_newton.slots_used(),
                s_newton.stages_used(), p_newton.slots_used(),
                p_newton.stages_used());
  }
  std::printf(
      "\nP-Newton holds module slots and stages constant to 100 queries by\n"
      "multiplexing rules; Sonata and S-Newton grow linearly (Fig. 16).\n");
  return 0;
}
