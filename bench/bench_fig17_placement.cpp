// Figure 17: network-wide resilient placement of Q4 (Algorithm 2).
//   (a) total and average table entries when Q4 (10 stages / ~19 entries)
//       is split over 1..5 switches (stages per switch 10,5,4,3,2), on an
//       8-ary fat-tree (monitoring traffic entering the ToRs) and on the
//       North-America ISP backbone (monitoring traffic from California).
//   (b) entries vs fat-tree scale: total grows linearly with the topology,
//       average per switch stabilizes to a constant.
#include <cstdio>

#include "bench_util.h"
#include "core/cqe.h"
#include "core/queries.h"
#include "net/placement.h"
#include "net/topology.h"

using namespace newton;

namespace {

std::vector<int> california_edges(const Topology& isp) {
  std::vector<int> out;
  for (int s : isp.switches()) {
    const auto& n = isp.nodes[s].name;
    if (n == "SanFrancisco" || n == "LosAngeles" || n == "SanJose" ||
        n == "SanDiego" || n == "Sacramento")
      out.push_back(s);
  }
  return out;
}

void report(const char* topo_name, const Topology& topo,
            const std::vector<int>& edges, const CompiledQuery& q4) {
  std::printf("\n[%s: %zu switches, ingress edges: %zu]\n", topo_name,
              topo.switches().size(), edges.size());
  std::printf("%14s %8s %14s %14s\n", "stages/switch", "slices",
              "total entries", "avg entries");
  bench::row_sep();
  for (std::size_t stages : {10u, 5u, 4u, 3u, 2u}) {
    const auto slices = slice_query_structural(q4, stages);
    const Placement p = place_resilient(topo, edges, slices.size());
    const PlacementStats st = placement_stats(p, slices);
    std::printf("%14zu %8zu %14zu %14.1f\n", stages, slices.size(),
                st.total_entries, st.avg_entries_per_switch);
  }
}

}  // namespace

int main() {
  const CompiledQuery q4 = compile_query(make_q4());
  bench::header("Figure 17(a): placing Q4 with varying per-switch stages");
  std::printf("Q4 compiles to %zu stages / %zu table entries\n",
              q4.num_stages(), q4.num_table_entries());

  const Topology ft8 = make_fat_tree(8);
  report("8-ary fat-tree (ToR ingress)", ft8, ft8.edge_switches(), q4);

  const Topology isp = make_isp_backbone();
  report("NA ISP backbone (California ingress)", isp, california_edges(isp),
         q4);

  bench::header("Figure 17(b): fat-tree scale sweep (3 stages/switch)");
  std::printf("%8s %10s %14s %14s\n", "k", "switches", "total entries",
              "avg entries");
  bench::row_sep();
  const auto slices = slice_query_structural(q4, 3);
  for (int k : {4, 8, 12, 16, 20, 24}) {
    const Topology ft = make_fat_tree(k);
    const Placement p =
        place_resilient(ft, ft.edge_switches(), slices.size());
    const PlacementStats st = placement_stats(p, slices);
    std::printf("%8d %10zu %14zu %14.1f\n", k, ft.switches().size(),
                st.total_entries, st.avg_entries_per_switch);
  }
  std::printf(
      "\nTotal entries grow linearly with topology size while the per-switch\n"
      "average stabilizes to a constant — resilient placement scales to\n"
      "large networks (Fig. 17).\n");
  return 0;
}
