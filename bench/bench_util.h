// Shared helpers for the experiment harnesses.  Each bench binary
// regenerates one table/figure of the paper's evaluation (§6) and prints
// the same rows/series; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/attacks.h"
#include "trace/trace_gen.h"

namespace newton::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_sep() {
  std::printf("--------------------------------------------------------------------------\n");
}

// Scale knob: NEWTON_BENCH_SCALE=full uses paper-sized traces; the default
// "quick" profile keeps every bench binary under ~a minute.
inline bool full_scale() {
  const char* v = std::getenv("NEWTON_BENCH_SCALE");
  return v != nullptr && std::string(v) == "full";
}

inline TraceProfile bench_caida(uint32_t seed = 1) {
  TraceProfile p = caida_like(seed);
  if (!full_scale()) p.num_flows = 6'000;
  return p;
}

inline TraceProfile bench_mawi(uint32_t seed = 2) {
  TraceProfile p = mawi_like(seed);
  if (!full_scale()) p.num_flows = 6'000;
  return p;
}

// Background + the attack mix the nine queries look for.
inline Trace attack_mix_trace(const TraceProfile& profile) {
  Trace t = generate_trace(profile);
  std::mt19937 rng(profile.seed + 1000);
  inject_syn_flood(t, ipv4(172, 16, 200, 1), 300, 1, 50'000'000, rng);
  inject_port_scan(t, ipv4(198, 18, 1, 1), ipv4(172, 16, 200, 2), 150,
                   150'000'000, rng);
  inject_udp_flood(t, ipv4(172, 16, 200, 3), 120, 2, 250'000'000, rng);
  inject_ssh_brute(t, ipv4(198, 18, 2, 2), ipv4(172, 16, 200, 4), 60,
                   350'000'000, rng);
  inject_slowloris(t, ipv4(198, 18, 3, 3), ipv4(172, 16, 200, 5), 60,
                   450'000'000, rng);
  inject_super_spreader(t, ipv4(198, 18, 4, 4), 150, 550'000'000, rng);
  inject_dns_no_tcp(t, ipv4(10, 50, 0, 1), ipv4(172, 16, 0, 53), 12,
                    650'000'000, rng);
  t.sort_by_time();
  return t;
}

}  // namespace newton::bench
