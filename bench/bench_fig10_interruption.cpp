// Figure 10: interruption brought by Sonata's reload-based query updates,
// versus Newton's rule-based updates.
//
//   (a) measured throughput timeline: a constant packet stream forwards
//       through an L3 plane (switch.p4 role) while each system updates its
//       queries at t=2s.  Sonata reloads the P4 program — the plane goes
//       dark for the reboot plus the forwarding-entry restoration; Newton
//       rewrites monitoring table rules and forwards every packet.
//   (b) interruption delay vs the number of forwarding entries (linear,
//       ~0.5 min @ 60K).
#include <cstdio>

#include "baselines/sonata.h"
#include "bench_util.h"
#include "core/controller.h"
#include "core/queries.h"
#include "dataplane/forwarding.h"

using namespace newton;

int main() {
  const std::size_t kEntries = 10'000;
  const int kPps = 2'000;           // simulated offered load
  const double kHorizonS = 16.0;

  // Route table shared shape: /24s under 10.0.0.0/8 + default.
  auto fill_routes = [&](LpmTable& t) {
    for (std::size_t i = 0; i < kEntries; ++i)
      t.insert((10u << 24) | (static_cast<uint32_t>(i) << 8), 24,
               static_cast<uint32_t>(i % 64));
    t.insert(0, 0, 63);
  };

  // Sonata side: forwarding plane that reloads at t=2s.
  ReloadableForwarder sonata_fw;
  fill_routes(sonata_fw.routes());
  sonata_fw.reload(2'000'000'000);

  // Newton side: forwarding plane never reloads; monitoring rules update
  // at t=2s on the live switch.
  ReloadableForwarder newton_fw;
  fill_routes(newton_fw.routes());
  NewtonSwitch sw(1, 12, nullptr);
  Controller ctl(sw);
  ctl.install(make_q1());

  bench::header("Figure 10(a): measured throughput around a query update");
  std::printf("(%d pps offered, %zu forwarding entries, update at t=2s)\n\n",
              kPps, kEntries);
  std::printf("%8s %18s %18s\n", "time(s)", "Sonata thr.", "Newton thr.");

  const uint64_t step_ns = 1'000'000'000ull / static_cast<uint64_t>(kPps);
  bool newton_updated = false;
  for (int sec = 0; sec < static_cast<int>(kHorizonS); ++sec) {
    int sonata_ok = 0, newton_ok = 0, offered = 0;
    for (uint64_t t = static_cast<uint64_t>(sec) * 1'000'000'000ull;
         t < static_cast<uint64_t>(sec + 1) * 1'000'000'000ull;
         t += step_ns) {
      const Packet p = make_packet(
          ipv4(10, 99, 0, 1),
          (10u << 24) | ((static_cast<uint32_t>(offered) % kEntries) << 8) | 1,
          1000, 80, kProtoTcp, kTcpSyn, 64, t);
      ++offered;
      if (sonata_fw.forward(p, t)) ++sonata_ok;
      if (!newton_updated && t >= 2'000'000'000ull) {
        // Newton's reaction to the same intent change: a rule batch.
        QueryParams qp;
        qp.q1_syn_th = 10;
        ctl.update("q1_new_tcp", make_q1(qp));
        newton_updated = true;
      }
      if (newton_fw.forward(p, t)) {
        sw.process(p);  // monitoring piggybacks on the live pipeline
        ++newton_ok;
      }
    }
    std::printf("%8d %18.2f %18.2f\n", sec,
                static_cast<double>(sonata_ok) / offered,
                static_cast<double>(newton_ok) / offered);
  }
  std::printf("\nSonata outage (measured): %.2f s; Newton dropped %llu "
              "packets across the update.\n",
              sonata_fw.reload_end_ns() / 1e9 - 2.0,
              static_cast<unsigned long long>(newton_fw.packets_dropped()));

  bench::header("Figure 10(b): Sonata interruption delay vs table entries");
  const SonataUpdateModel model;
  std::printf("%12s %22s %22s\n", "entries", "model (s)", "simulated (s)");
  for (std::size_t entries :
       {1'000u, 5'000u, 10'000u, 20'000u, 30'000u, 40'000u, 50'000u, 60'000u}) {
    ReloadableForwarder fw;
    for (std::size_t i = 0; i < entries; ++i)
      fw.routes().insert(static_cast<uint32_t>(i) << 8, 24, 0);
    fw.reload(0);
    std::printf("%12zu %22.2f %22.2f\n", entries,
                model.interruption_seconds(entries),
                fw.reload_end_ns() / 1e9);
  }
  return 0;
}
