// Table 3: hardware resources consumed by Newton, normalized by the usage
// of the reference switch.p4 program — per-stage (naive baseline vs compact
// module layout), per-module, and per-primitive (amortized over the 256
// rules each module supports).
#include <array>
#include <cstdio>

#include "bench_util.h"
#include "core/compose.h"
#include "core/layout.h"
#include "core/queries.h"

using namespace newton;

namespace {

void print_row(const char* label, const ResourceVec& v) {
  const auto n = v.normalized_by(switch_p4_reference()).as_array();
  std::printf("%-34s", label);
  for (double x : n) std::printf(" %9.4f%%", x * 100.0);
  std::printf("\n");
}

// Amortized per-primitive usage: the primitive's module rules divided by
// each module's 256-rule capacity (§6.2 "each of the 256 queries can
// amortize the module resources").
ResourceVec primitive_usage(const Query& q, bool opt1 = true) {
  CompileOptions opts;
  opts.opt1 = opt1;  // keep front filters as modules to measure them
  const CompiledQuery cq = compile_query(q, opts);
  ResourceVec total;
  for (const auto& b : cq.branches) {
    for (const auto& m : b.modules) {
      ResourceVec mod;
      switch (m.type) {
        case ModuleType::K: mod = k_module_resources(); break;
        case ModuleType::H: mod = h_module_resources(); break;
        case ModuleType::S: mod = s_module_resources(); break;
        case ModuleType::R: mod = r_module_resources(); break;
      }
      total += mod * (1.0 / static_cast<double>(kRulesPerModule));
    }
  }
  return total;
}

}  // namespace

int main() {
  bench::header("Table 3: resources normalized by switch.p4");
  std::printf("%-34s", "");
  for (const auto& n : kResourceNames) std::printf(" %10s", std::string(n).c_str());
  std::printf("\n");
  bench::row_sep();

  std::printf("[per-stage]\n");
  print_row("  Baseline (naive layout)", naive_stage_usage());
  print_row("  Compact module layout", compact_stage_usage());

  std::printf("[per-module]\n");
  print_row("  Field/key selection (K)", k_module_resources());
  print_row("  Hash calculation (H)", h_module_resources());
  print_row("  State bank (S)", s_module_resources());
  print_row("  Result process (R)", r_module_resources());

  std::printf("[per-primitive, amortized /256 rules]\n");
  print_row("  filter(pkt.tcp.flags==2)",
            primitive_usage(QueryBuilder("f")
                                .filter(Predicate{}.where(Field::TcpFlags,
                                                          Cmp::Eq, 2))
                                .build(),
                            /*opt1=*/false));
  print_row("  map(pkt=>(pkt.dip))",
            primitive_usage(QueryBuilder("m").map({Field::DstIp}).build()));
  print_row("  reduce(keys=(pkt.dip),f=sum)",
            primitive_usage(QueryBuilder("r")
                                .reduce({Field::DstIp}, Agg::Sum)
                                .when(Cmp::Ge, 1 << 30)
                                .build()));
  print_row("  distinct(keys=(pkt.dip,pkt.sip))",
            primitive_usage(
                QueryBuilder("d").distinct({Field::DstIp, Field::SrcIp}).build()));

  std::printf(
      "\nCompact layout packs all four module types per stage: per-stage\n"
      "utilization is 4x the naive baseline, and the skewed per-module\n"
      "demands (H: crossbar, S: SRAM/SALU, R: TCAM/VLIW) balance out.\n");
  return 0;
}
