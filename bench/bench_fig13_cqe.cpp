// Figure 13: network-wide monitoring overhead of Q1 vs forwarding-path
// length (the paper's 3-switch line testbed).  Systems that treat switches
// as independent entities (sole-execution Newton/Sonata, TurboFlow, *Flow,
// FlowRadar) report per switch, so overhead grows linearly with hop count;
// Newton's CQE treats the path as one consolidated pipeline and reports
// once, independent of hops.  The SP header costs < 1% bandwidth.
#include <cstdio>

#include "analyzer/analyzer.h"
#include "baselines/flowradar.h"
#include "baselines/starflow.h"
#include "baselines/turboflow.h"
#include "bench_util.h"
#include "core/queries.h"
#include "net/net_controller.h"

using namespace newton;

namespace {

Trace fig13_trace() {
  TraceProfile prof = bench::bench_caida(13);
  Trace t = generate_trace(prof);
  std::mt19937 rng(113);
  inject_syn_flood(t, ipv4(172, 16, 99, 1), 400, 1, 100'000'000, rng);
  t.sort_by_time();
  return t;
}

struct HopResult {
  std::size_t newton_msgs;
  double newton_sp_overhead;  // SP bytes / payload bytes
  std::size_t sole_msgs;
  uint64_t turbo_msgs, star_msgs, radar_msgs;
};

HopResult run_hops(std::size_t hops, const Trace& t) {
  HopResult r{};

  // Newton with CQE: the per-switch stage budget shrinks with path length
  // so Q1 always spans exactly the available switches — the "consolidated
  // pipeline" view of §5.1.
  {
    QueryParams sizing;
    sizing.sketch_width = 2048;
    const std::size_t q_stages = compile_query(make_q1(sizing)).num_stages();
    const std::size_t budget = (q_stages + hops - 1) / hops + 1;
    Analyzer an;
    Network net(make_line(static_cast<int>(hops)), budget, &an, 1 << 14);
    NetworkController ctl(net, &an, 1 << 14);
    QueryParams p;
    p.sketch_width = 2048;
    ctl.deploy(make_q1(p));
    const auto hosts = net.topo().hosts();
    for (const Packet& pk : t.packets) net.send(pk, hosts[0], hosts[1]);
    r.newton_msgs = an.total_reports();
    r.newton_sp_overhead =
        static_cast<double>(net.total_sp_link_bytes()) /
        static_cast<double>(net.total_payload_link_bytes());
  }

  // Sole execution model: the full query independently on every switch.
  {
    Analyzer an;
    Network net(make_line(static_cast<int>(hops)), 12, &an, 1 << 14);
    NetworkController ctl(net, &an, 1 << 14);
    QueryParams p;
    p.sketch_width = 2048;
    ctl.deploy_sole(make_q1(p));
    const auto hosts = net.topo().hosts();
    for (const Packet& pk : t.packets) net.send(pk, hosts[0], hosts[1]);
    r.sole_msgs = an.total_reports();
  }

  // Full-export baselines: one instance per switch.
  for (std::size_t h = 0; h < hops; ++h) {
    TurboFlowModel turbo;
    StarFlowModel star;
    FlowRadarModel radar(4'096, 10);
    overhead_over_trace(turbo, t);
    overhead_over_trace(star, t);
    overhead_over_trace(radar, t);
    r.turbo_msgs += turbo.messages();
    r.star_msgs += star.messages();
    r.radar_msgs += radar.messages();
  }
  return r;
}

}  // namespace

int main() {
  const Trace t = fig13_trace();
  bench::header("Figure 13: network-wide monitoring overhead for Q1");
  std::printf("trace: %zu packets\n\n", t.size());
  std::printf("%6s %14s %14s %14s %14s %14s %16s\n", "hops", "Newton(CQE)",
              "Sole/Sonata", "TurboFlow", "*Flow", "FlowRadar",
              "SP bw overhead");
  bench::row_sep();
  for (std::size_t hops : {1u, 2u, 3u}) {
    const HopResult r = run_hops(hops, t);
    std::printf("%6zu %14zu %14zu %14llu %14llu %14llu %15.3f%%\n", hops,
                r.newton_msgs, r.sole_msgs,
                static_cast<unsigned long long>(r.turbo_msgs),
                static_cast<unsigned long long>(r.star_msgs),
                static_cast<unsigned long long>(r.radar_msgs),
                r.newton_sp_overhead * 100.0);
  }
  std::printf(
      "\nNewton reports once per intent regardless of path length; the\n"
      "other systems grow linearly with hop count (Fig. 13).\n");
  return 0;
}
