// Ablation: reacting to anomalies by runtime query operations (Newton) vs
// Sonata-style dynamic refinement (fixed program, prefix zoom ladder).
//
// Both approaches pinpoint a /32 SYN-flood victim.  Refinement needs one
// 100 ms window per ladder level; Newton installs the precise intent in
// ~10 ms of table-rule writes and reports within the first window.  Attacks
// shorter than the ladder are missed entirely by refinement.
#include <cstdio>

#include "baselines/sonata_refinement.h"
#include "bench_util.h"
#include "core/compose.h"
#include "core/newton_switch.h"
#include "core/queries.h"

using namespace newton;

namespace {

Trace flood_lasting(int windows, uint32_t victim) {
  Trace t;
  std::mt19937 rng(81);
  for (int w = 0; w < windows; ++w)
    inject_syn_flood(t, victim, 150, 1,
                     static_cast<uint64_t>(w) * 100'000'000 + 1'000'000, rng);
  t.sort_by_time();
  return t;
}

}  // namespace

int main() {
  bench::header("Ablation: detection latency — runtime queries vs refinement");
  std::printf("(SYN flood, threshold 100/window; refinement ladder "
              "/8->/16->/24->/32)\n\n");
  std::printf("%18s | %22s | %26s\n", "attack duration",
              "Newton detect window", "refinement detect window");
  bench::row_sep();

  const uint32_t victim = ipv4(172, 16, 70, 7);
  for (int windows : {1, 2, 3, 4, 6, 10}) {
    const Trace t = flood_lasting(windows, victim);

    QueryParams p;
    p.q1_syn_th = 100;
    ReportBuffer sink;
    NewtonSwitch sw(1, 12, &sink);
    sw.install(compile_query(make_q1(p)));
    for (const Packet& pk : t.packets) sw.process(pk);
    std::string newton_at = sink.size()
        ? std::to_string(sink.records()[0].ts_ns / 100'000'000)
        : "missed";

    SonataRefinement ref({8, 16, 24, 32}, 100);
    const auto det = ref.run(t);
    std::string refine_at =
        det.empty() ? "missed" : std::to_string(det[0].window);

    std::printf("%15d w | %22s | %26s\n", windows, newton_at.c_str(),
                refine_at.c_str());
  }
  std::printf(
      "\nRefinement spends one window per ladder level and misses attacks\n"
      "shorter than the ladder; Newton's runtime-installed intent reports\n"
      "in the first window (install cost ~10 ms of rules, Fig. 11).\n");
  return 0;
}
