// Detector-library accuracy: every detector in src/detectors/ run over the
// labeled attack trace (make_labeled_attack_trace) through the full live
// path — pcap on disk, streaming PcapFileSource, sharded runtime — and
// scored against exact ground truth derived from the same capture.
//
// This is the end-to-end companion to bench_fig14_accuracy: Fig. 14 sweeps
// sketch width on one query; this experiment fixes the production sketch
// and asks "do the operator-facing detectors actually detect the labeled
// attacks?", at 1 and 4 shards (results must agree).
//
//   bench_detectors [--pcap FILE] [--shards N] [--seed S]
//
// Writes BENCH_detectors.json (per-detector precision/recall/f1/fpr plus
// the ingest telemetry of the run).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "bench_util.h"
#include "core/newton_switch.h"
#include "detectors/detector.h"
#include "ingest/pcap_source.h"
#include "ingest/pump.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/telemetry.h"
#include "trace/attacks.h"
#include "trace/pcap.h"

using namespace newton;

namespace {

struct Row {
  std::string id;
  detectors::Evaluation ev;
  bool ok = false;
};

std::vector<Row> run_once(const std::string& pcap_path, std::size_t shards,
                          const std::vector<detectors::Detector>& lib) {
  telemetry::Registry::global().reset();
  const Trace t = load_pcap(pcap_path);

  std::vector<const detectors::Detector*> all;
  for (const auto& d : lib) all.push_back(&d);
  // One runtime pass per sharding-compatible group: exact semantics need
  // the shard key to be affine for every installed stateful key, and the
  // sip-keyed / dip-keyed / dport-keyed families have no common key.
  std::map<std::string, Row> by_id;
  for (const auto& g : detectors::group_by_shard_key(all)) {
    Analyzer an;
    detectors::ValueSink values(g.members.front()->query.window_ns);
    // Concurrent chains stack up the pipeline: give the primary switch a
    // deep stage budget (install places overlapping queries into later
    // stages).
    NewtonSwitch sw(1, 64, nullptr);
    RuntimeOptions ro;
    ro.num_shards = shards;
    ro.shard_key = g.key;
    ro.record_snapshots = false;
    ShardedRuntime rt(sw, ro, &an);
    rt.set_report_sink(&values);
    for (const auto* d : g.members) rt.install(d->query);

    ingest::PcapFileSource src(pcap_path);
    ingest::IngestPump pump(rt);
    pump.run(src);
    rt.finish();

    const detectors::EvalInput in{t, an, values};
    for (const auto* d : g.members) {
      Row r;
      r.id = d->id;
      r.ev = d->evaluate(in);
      r.ok = r.ev.acc.precision() >= d->min_precision &&
             r.ev.acc.recall() >= d->min_recall;
      by_id[r.id] = std::move(r);
    }
  }
  // Report in library order regardless of group order.
  std::vector<Row> rows;
  for (const auto& d : lib) rows.push_back(by_id[d.id]);
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Detector library accuracy over live pcap ingestion");

  std::string pcap_path;
  std::size_t shards = 4;
  uint32_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pcap") == 0 && i + 1 < argc) {
      pcap_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint32_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_detectors [--pcap FILE] [--shards N] "
                   "[--seed S]\n");
      return 2;
    }
  }

  // Default workload: the labeled attack trace, exported as a capture so
  // the run exercises the real file-ingestion path end to end.
  std::string generated;
  if (pcap_path.empty()) {
    const LabeledAttackTrace labeled = make_labeled_attack_trace(
        seed, bench::full_scale() ? 2'000 : 120);
    generated = "BENCH_detectors_labeled.pcap";
    save_pcap(labeled.trace, generated);
    pcap_path = generated;
    std::printf("labeled trace: %zu packets (seed %u) -> %s\n",
                labeled.trace.size(), seed, generated.c_str());
  }

  const auto lib = detectors::detector_library();
  const auto rows1 = run_once(pcap_path, 1, lib);
  const auto rowsN =
      shards > 1 ? run_once(pcap_path, shards, lib) : rows1;
  const std::string ingest_json =
      telemetry::to_json(telemetry::Registry::global().snapshot(), 2);

  bool all_ok = true;
  bool shard_agree = true;
  std::printf("%-14s %9s %9s %9s %9s %9s  status\n", "detector", "detected",
              "truth", "precision", "recall", "f1");
  for (std::size_t i = 0; i < rowsN.size(); ++i) {
    const Row& r = rowsN[i];
    all_ok = all_ok && r.ok;
    const bool agree =
        rows1[i].ev.detected_keys == r.ev.detected_keys &&
        rows1[i].ev.acc.tp == r.ev.acc.tp && rows1[i].ev.acc.fp == r.ev.acc.fp;
    shard_agree = shard_agree && agree;
    std::printf("%-14s %9zu %9zu %9.3f %9.3f %9.3f  [%s%s]\n", r.id.c_str(),
                r.ev.detected_keys, r.ev.truth_keys, r.ev.acc.precision(),
                r.ev.acc.recall(), r.ev.acc.f1(), r.ok ? "ok" : "MISS",
                agree ? "" : ", 1-vs-N DIVERGED");
  }
  bench::row_sep();
  std::printf("bounds %s; 1-vs-%zu-shard results %s\n",
              all_ok ? "met" : "VIOLATED", shards,
              shard_agree ? "agree" : "DIVERGED");

  FILE* f = std::fopen("BENCH_detectors.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_detectors.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"detector_accuracy\",\n");
  std::fprintf(f, "  \"pcap\": \"%s\",\n", pcap_path.c_str());
  std::fprintf(f, "  \"shards\": %zu,\n", shards);
  std::fprintf(f, "  \"shard_agreement\": %s,\n",
               shard_agree ? "true" : "false");
  std::fprintf(f, "  \"detectors\": [\n");
  for (std::size_t i = 0; i < rowsN.size(); ++i) {
    const Row& r = rowsN[i];
    std::fprintf(f,
                 "    {\"id\": \"%s\", \"detected\": %zu, \"truth\": %zu, "
                 "\"tp\": %zu, \"fp\": %zu, \"fn\": %zu, \"tn\": %zu, "
                 "\"precision\": %.4f, \"recall\": %.4f, \"f1\": %.4f, "
                 "\"fpr\": %.4f, \"ok\": %s}%s\n",
                 r.id.c_str(), r.ev.detected_keys, r.ev.truth_keys,
                 r.ev.acc.tp, r.ev.acc.fp, r.ev.acc.fn, r.ev.acc.tn,
                 r.ev.acc.precision(), r.ev.acc.recall(), r.ev.acc.f1(),
                 r.ev.acc.fpr(), r.ok ? "true" : "false",
                 i + 1 == rowsN.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ingest_metrics\": %s\n", ingest_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_detectors.json\n");

  return all_ok && shard_agree ? 0 : 1;
}
