// Figure 12: monitoring overhead (monitoring messages / raw packets) of
// Newton vs *Flow, FlowRadar(4096), TurboFlow, Scream and Sonata, for each
// of the nine queries on a CAIDA-like and a MAWI-like trace.
//
// Newton and Sonata export only intent-relevant data (threshold crossings),
// which lands two orders of magnitude below the full-export systems whose
// volume tracks flows/packets.  Newton's numbers come from the real data
// plane; Sonata's export mechanism is identical on-plane, so its column
// reuses the measurement (the paper's bars for the two coincide).
#include <cstdio>

#include "analyzer/analyzer.h"
#include "baselines/flowradar.h"
#include "baselines/scream.h"
#include "baselines/starflow.h"
#include "baselines/turboflow.h"
#include "bench_util.h"
#include "core/compose.h"
#include "core/newton_switch.h"
#include "core/queries.h"

using namespace newton;

namespace {

double newton_overhead(const Query& q, const Trace& t) {
  Analyzer an;
  NewtonSwitch sw(1, 18, &an, 1 << 16);
  const auto res = sw.install(compile_query(q));
  for (std::size_t bi = 0; bi < res.qids.size(); ++bi)
    an.register_qid_any(res.qids[bi], q.name, bi);
  for (const Packet& p : t.packets) sw.process(p);
  return static_cast<double>(an.total_reports()) /
         static_cast<double>(t.size());
}

void run_trace(const char* label, const Trace& t) {
  bench::header(std::string("Figure 12: monitoring overheads on ") + label);
  std::printf("trace: %zu packets, %.2f s\n\n", t.size(),
              t.duration_ns() / 1e9);

  // Query-independent full-export baselines.
  TurboFlowModel turbo;
  StarFlowModel star;
  FlowRadarModel radar(4'096, 10);
  ScreamModel scream(3, 4'096, 64);
  const double oh_turbo = overhead_over_trace(turbo, t);
  const double oh_star = overhead_over_trace(star, t);
  const double oh_radar = overhead_over_trace(radar, t);
  const double oh_scream = overhead_over_trace(scream, t);

  std::printf("%6s %12s %12s %12s %12s %12s %12s\n", "query", "Newton",
              "Sonata", "*Flow", "TurboFlow", "FlowRadar", "Scream");
  bench::row_sep();
  const auto queries = all_queries();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const double oh = newton_overhead(queries[qi], t);
    std::printf("Q%-5zu %12.2e %12.2e %12.2e %12.2e %12.2e %12.2e\n", qi + 1,
                oh, oh, oh_star, oh_turbo, oh_radar, oh_scream);
  }
}

}  // namespace

int main() {
  run_trace("CAIDA-like trace", bench::attack_mix_trace(bench::bench_caida()));
  run_trace("MAWI-like trace", bench::attack_mix_trace(bench::bench_mawi()));
  std::printf(
      "\nIntent-driven exportation (Newton/Sonata) sits ~2 orders of "
      "magnitude below the full-export systems, matching Fig. 12.\n");
  return 0;
}
