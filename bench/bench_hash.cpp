// Hash-path microbenchmark: single-lane hash_words vs. the multi-lane
// batched hash_words_lanes (the compiled executors' hash phase), across
// key widths and burst sizes.
//
// Single-lane CRC is latency-bound: each word's slicing-by-4 lookup chains
// through the previous word's accumulator, so the load ports sit idle.
// The lanes path interleaves four independent accumulator chains, turning
// the same table lookups into parallel streams.  The ratio printed here is
// the raw memory-level-parallelism headroom the executor's burst schedule
// taps; BENCH_runtime.json's "mlp" block shows how much survives end to
// end.
//
//   bench_hash [--reps N]    hash calls per measurement (default sized so
//                            a full run takes a few seconds)
//
// Writes BENCH_hash.json in the working directory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

#include "bench_util.h"
#include "sketch/hash.h"

namespace newton {
namespace {

uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint32_t mix(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x;
}

struct Row {
  const char* algo = "";
  std::size_t nwords = 0;
  std::size_t lanes = 0;
  double scalar_mhps = 0.0;   // million hashes/sec, hash_words per lane
  double batched_mhps = 0.0;  // million hashes/sec, hash_words_lanes
  double speedup = 0.0;
};

Row run_one(HashAlgo algo, const char* name, std::size_t nwords,
            std::size_t lanes, std::size_t reps) {
  // One flat lane-major block, same layout either path reads.
  std::vector<uint32_t> data(lanes * nwords);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = mix(static_cast<uint32_t>(i) * 2654435761u + 99u);
  std::vector<uint32_t> out(lanes);
  volatile uint32_t guard = 0;  // keep the hashing observable

  const uint64_t s0 = now_ns();
  for (std::size_t r = 0; r < reps; ++r) {
    uint32_t acc = 0;
    for (std::size_t l = 0; l < lanes; ++l)
      acc ^= hash_words(algo, 0x1234u + static_cast<uint32_t>(r & 3),
                        std::span<const uint32_t>(
                            data.data() + l * nwords, nwords));
    guard = guard ^ acc;
  }
  const uint64_t s1 = now_ns();

  const uint64_t b0 = now_ns();
  for (std::size_t r = 0; r < reps; ++r) {
    hash_words_lanes(algo, 0x1234u + static_cast<uint32_t>(r & 3),
                     data.data(), nwords, nwords, lanes, nullptr,
                     out.data());
    uint32_t acc = 0;
    for (std::size_t l = 0; l < lanes; ++l) acc ^= out[l];
    guard = guard ^ acc;
  }
  const uint64_t b1 = now_ns();

  Row row;
  row.algo = name;
  row.nwords = nwords;
  row.lanes = lanes;
  const double hashes = static_cast<double>(reps) * lanes;
  row.scalar_mhps = hashes * 1e3 / static_cast<double>(s1 - s0);
  row.batched_mhps = hashes * 1e3 / static_cast<double>(b1 - b0);
  row.speedup = row.batched_mhps / row.scalar_mhps;
  return row;
}

}  // namespace
}  // namespace newton

int main(int argc, char** argv) {
  using namespace newton;
  bench::header("Batched multi-lane hashing vs. single-lane");

  std::size_t reps = bench::full_scale() ? 200'000 : 50'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atol(argv[++i]));
      if (reps == 0) reps = 1;
    } else {
      std::fprintf(stderr, "usage: bench_hash [--reps N]\n");
      return 2;
    }
  }

  // Key widths: 1 (single field), 2 (src/dst pair), 5 (five-tuple),
  // 9 (every global field — what the executors' hash phase uses).
  // Lane counts: the runtime burst sweep's shapes.
  const std::size_t widths[] = {1, 2, 5, 9};
  const std::size_t lane_counts[] = {4, 16, 64, 256};
  struct AlgoCase {
    HashAlgo algo;
    const char* name;
  };
  const AlgoCase algos[] = {{HashAlgo::Crc32, "crc32"},
                            {HashAlgo::Crc32c, "crc32c"}};

  std::vector<Row> rows;
  for (const AlgoCase& a : algos)
    for (std::size_t w : widths)
      for (std::size_t lanes : lane_counts) {
        // Keep per-row work roughly constant across lane counts.
        const std::size_t r = std::max<std::size_t>(1, reps / lanes);
        Row row = run_one(a.algo, a.name, w, lanes, r);
        std::printf("%-7s words=%zu lanes=%3zu  scalar=%7.1f Mh/s  "
                    "batched=%7.1f Mh/s  speedup=%.2fx\n",
                    row.algo, row.nwords, row.lanes, row.scalar_mhps,
                    row.batched_mhps, row.speedup);
        rows.push_back(row);
      }
  bench::row_sep();

  FILE* f = std::fopen("BENCH_hash.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_hash.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hash_lanes\",\n");
  std::fprintf(f, "  \"metric\": \"million hashes per second, single-lane "
                  "hash_words vs batched hash_words_lanes on the same "
                  "lane-major keys\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"algo\": \"%s\", \"nwords\": %zu, \"lanes\": %zu, "
                 "\"scalar_mhps\": %.1f, \"batched_mhps\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.algo, r.nwords, r.lanes, r.scalar_mhps, r.batched_mhps,
                 r.speedup, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_hash.json\n");
  return 0;
}
