// Figure 14: monitoring accuracy and false-positive rate of Q1 as the
// number of registers per array varies (256..4096).
//
// Setup mirrors §6.3: every switch hosts three register arrays (a depth-3
// Count-Min per switch); Sonata is confined to one switch, while Newton_k
// uses CQE to spread a depth-3k sketch over k switches, so its effective
// sketch grows with the path.  Detection is compared per window against the
// exact ground truth.
#include <cmath>
#include <cstdio>

#include "analyzer/analyzer.h"
#include "analyzer/deferred.h"
#include "analyzer/ground_truth.h"
#include "analyzer/metrics.h"
#include "bench_util.h"
#include "core/queries.h"
#include "net/net_controller.h"

using namespace newton;

namespace {

Trace fig14_trace() {
  // Backbone-like window load: enough concurrent flows per 100 ms window
  // that a 256-register array is under real collision pressure (the regime
  // Fig. 14 evaluates).
  TraceProfile prof = caida_like(14);
  prof.num_flows = bench::full_scale() ? 60'000 : 18'000;
  prof.duration_sec = 0.25;
  prof.max_flow_pkts = 150;
  Trace t = generate_trace(prof);
  std::mt19937 rng(114);
  // Floods straddling the threshold create hard positives and negatives.
  uint32_t sizes[] = {20, 30, 38, 42, 50, 64, 90, 150};
  uint64_t at = 20'000'000;
  int host = 1;
  for (uint32_t s : sizes) {
    inject_syn_flood(t, ipv4(172, 16, 77, static_cast<uint8_t>(host++)), s, 1,
                     at, rng);
    at += 60'000'000;
  }
  t.sort_by_time();
  return t;
}

Accuracy evaluate(const Query& q, const Trace& t, std::size_t k_switches,
                  std::size_t width) {
  // Horizontal composition for sliced deployment: with one metadata set in
  // flight, every cut carries at most one hash + one state value, so any
  // per-switch stage budget is sliceable.
  CompileOptions opts;
  opts.opt3 = false;
  const CompiledQuery cq = compile_query(q, opts);
  const std::size_t stages =
      (cq.num_stages() + k_switches - 1) / k_switches + 2;

  Analyzer an;
  Network net(make_line(static_cast<int>(k_switches)), stages, &an, 1 << 17);
  NetworkController ctl(net, &an, 1 << 17);
  const auto& dep = ctl.deploy(q, opts);

  // Faithful fallback: slices beyond the path continue in software with the
  // same sketch geometry (§5.2).
  SoftwarePlane software(&an, /*virtual_stages=*/64, 1 << 17);
  if (dep.slices.size() > k_switches) {
    const auto qids = software.install_remaining(dep.slices, k_switches,
                                                 dep.uid);
    for (uint16_t qq : qids) an.register_qid_any(qq, q.name, 0);
  }
  Network* net_ptr = &net;
  net.set_deferred_handler([&software](const Packet& p, const SpHeader& sp) {
    software.process(p, sp);
  });
  (void)net_ptr;
  (void)width;

  const auto hosts = net.topo().hosts();
  for (const Packet& p : t.packets) net.send(p, hosts[0], hosts[1]);

  const QueryTruth truth = exact_truth(q, t);
  Accuracy total;
  for (const auto& [w, pass] : truth.branches[0].universe) {
    const KeySet detected = an.detected_in_window(q.name, 0, w, q.window_ns);
    const KeySet truth_w = truth.branches[0].passing.contains(w)
                               ? truth.branches[0].passing.at(w)
                               : KeySet{};
    const Accuracy a = score(detected, truth_w, pass);
    total.tp += a.tp;
    total.fp += a.fp;
    total.fn += a.fn;
    total.tn += a.tn;
  }
  return total;
}

}  // namespace

int main() {
  const Trace t = fig14_trace();
  bench::header("Figure 14: Q1 accuracy (F1) and false-positive rate");
  std::printf("trace: %zu packets; threshold = 40 SYNs / 100 ms window\n\n",
              t.size());
  std::printf("%10s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "registers",
              "SonataF1", "N1_F1", "N2_F1", "N3_F1", "SonataFPR", "N1_FPR",
              "N2_FPR", "N3_FPR");
  bench::row_sep();

  for (std::size_t width : {256u, 512u, 1024u, 2048u, 4096u}) {
    double f1[4], fpr[4];
    // Sonata: one switch, three arrays (depth 3, rows of `width`).
    {
      QueryParams p;
      p.sketch_depth = 3;
      p.sketch_width = width;
      const Accuracy a = evaluate(make_q1(p), t, 1, width);
      f1[0] = a.f1();
      fpr[0] = a.fpr();
    }
    // Newton_k: CQE over k switches with three arrays each — every logical
    // row pools the k switches' arrays into a k*width-wide partitioned row.
    for (std::size_t k = 1; k <= 3; ++k) {
      QueryParams p;
      p.sketch_depth = 3;
      p.sketch_width = width;
      p.row_partitions = k;
      const Accuracy a = evaluate(make_q1(p), t, k, width);
      f1[k] = a.f1();
      fpr[k] = a.fpr();
    }
    std::printf("%10zu | %8.3f %8.3f %8.3f %8.3f | %8.4f %8.4f %8.4f %8.4f\n",
                width, f1[0], f1[1], f1[2], f1[3], fpr[0], fpr[1], fpr[2],
                fpr[3]);
  }
  std::printf(
      "\nNewton_k harvests registers across k switches: accuracy rises and\n"
      "FPR falls with path length, with the largest gains at small arrays\n"
      "(Fig. 14's ~350%% improvement at 256 registers).\n");
  return 0;
}
