// Figure 15 (+ Figure 7): query compilation evaluation.
//   (a) primitives and modules per query under baseline / +Opt.1 / +Opt.2 /
//       +Opt.3, with Sonata's logical-table estimate for comparison;
//   (b) stages per query under the same ladder, with Sonata's estimated
//       stage count ([55]-style) for five queries;
//   Fig. 7: overall module/stage reduction ratios per query.
#include <cstdio>

#include "baselines/sonata.h"
#include "bench_util.h"
#include "core/compose.h"
#include "core/queries.h"

using namespace newton;

namespace {

CompileOptions level(int o) {
  CompileOptions opts;
  opts.opt1 = o >= 1;
  opts.opt2 = o >= 2;
  opts.opt3 = o >= 3;
  return opts;
}

}  // namespace

int main() {
  const auto queries = all_queries();

  bench::header("Figure 15(a): primitives / modules per query");
  std::printf("%6s %6s | %9s %9s %9s %9s | %12s\n", "query", "prims",
              "baseline", "+Opt.1", "+Opt.2", "+Opt.3", "Sonata tables");
  bench::row_sep();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    std::printf("Q%-5zu %6zu |", qi + 1, q.num_primitives());
    for (int o = 0; o <= 3; ++o)
      std::printf(" %9zu", compile_query(q, level(o)).num_modules());
    std::printf(" | %12zu\n", estimate_sonata(q).tables);
  }

  bench::header("Figure 15(b): stages per query");
  std::printf("%6s | %9s %9s %9s %9s | %12s\n", "query", "baseline", "+Opt.1",
              "+Opt.2", "+Opt.3", "Sonata stages");
  bench::row_sep();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    std::printf("Q%-5zu |", qi + 1);
    for (int o = 0; o <= 3; ++o)
      std::printf(" %9zu", compile_query(q, level(o)).num_stages());
    // The paper estimates Sonata stages for 5 of the queries.
    if (qi == 0 || qi == 2 || qi == 3 || qi == 4 || qi == 6)
      std::printf(" | %12zu\n", estimate_sonata(q).stages);
    else
      std::printf(" | %12s\n", "-");
  }

  bench::header("Figure 7: reduction ratios vs the naive composition");
  std::printf("%6s %14s %14s %16s\n", "query", "modules cut", "stages cut",
              "branch span (st)");
  bench::row_sep();
  double min_mod = 1.0, min_stage = 1.0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    const CompiledQuery naive = compile_query(q, level(0));
    const CompiledQuery opt = compile_query(q, level(3));
    const double mod_cut = 1.0 - static_cast<double>(opt.num_modules()) /
                                     static_cast<double>(naive.num_modules());
    const double stage_cut = 1.0 - static_cast<double>(opt.num_stages()) /
                                       static_cast<double>(naive.num_stages());
    min_mod = std::min(min_mod, mod_cut);
    min_stage = std::min(min_stage, stage_cut);
    std::printf("Q%-5zu %13.1f%% %13.1f%% %16zu\n", qi + 1, mod_cut * 100,
                stage_cut * 100, opt.branch_stage_span());
  }
  std::printf("\nminimum reduction across queries: modules %.1f%%, stages "
              "%.1f%%  (paper: >=42.4%% / >=69.7%%)\n",
              min_mod * 100, min_stage * 100);
  return 0;
}
