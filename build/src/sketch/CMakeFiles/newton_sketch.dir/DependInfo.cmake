
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/bloom.cpp" "src/sketch/CMakeFiles/newton_sketch.dir/bloom.cpp.o" "gcc" "src/sketch/CMakeFiles/newton_sketch.dir/bloom.cpp.o.d"
  "/root/repo/src/sketch/count_min.cpp" "src/sketch/CMakeFiles/newton_sketch.dir/count_min.cpp.o" "gcc" "src/sketch/CMakeFiles/newton_sketch.dir/count_min.cpp.o.d"
  "/root/repo/src/sketch/estimator.cpp" "src/sketch/CMakeFiles/newton_sketch.dir/estimator.cpp.o" "gcc" "src/sketch/CMakeFiles/newton_sketch.dir/estimator.cpp.o.d"
  "/root/repo/src/sketch/hash.cpp" "src/sketch/CMakeFiles/newton_sketch.dir/hash.cpp.o" "gcc" "src/sketch/CMakeFiles/newton_sketch.dir/hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
