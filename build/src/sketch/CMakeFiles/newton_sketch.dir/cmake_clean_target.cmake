file(REMOVE_RECURSE
  "libnewton_sketch.a"
)
