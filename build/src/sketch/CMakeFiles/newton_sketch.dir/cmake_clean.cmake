file(REMOVE_RECURSE
  "CMakeFiles/newton_sketch.dir/bloom.cpp.o"
  "CMakeFiles/newton_sketch.dir/bloom.cpp.o.d"
  "CMakeFiles/newton_sketch.dir/count_min.cpp.o"
  "CMakeFiles/newton_sketch.dir/count_min.cpp.o.d"
  "CMakeFiles/newton_sketch.dir/estimator.cpp.o"
  "CMakeFiles/newton_sketch.dir/estimator.cpp.o.d"
  "CMakeFiles/newton_sketch.dir/hash.cpp.o"
  "CMakeFiles/newton_sketch.dir/hash.cpp.o.d"
  "libnewton_sketch.a"
  "libnewton_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
