# Empty dependencies file for newton_sketch.
# This may be replaced when dependencies are built.
