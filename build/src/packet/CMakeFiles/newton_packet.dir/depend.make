# Empty dependencies file for newton_packet.
# This may be replaced when dependencies are built.
