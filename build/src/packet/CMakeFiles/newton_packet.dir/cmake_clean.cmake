file(REMOVE_RECURSE
  "CMakeFiles/newton_packet.dir/packet.cpp.o"
  "CMakeFiles/newton_packet.dir/packet.cpp.o.d"
  "CMakeFiles/newton_packet.dir/sp_header.cpp.o"
  "CMakeFiles/newton_packet.dir/sp_header.cpp.o.d"
  "CMakeFiles/newton_packet.dir/wire.cpp.o"
  "CMakeFiles/newton_packet.dir/wire.cpp.o.d"
  "libnewton_packet.a"
  "libnewton_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
