file(REMOVE_RECURSE
  "libnewton_packet.a"
)
