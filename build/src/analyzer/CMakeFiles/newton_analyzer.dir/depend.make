# Empty dependencies file for newton_analyzer.
# This may be replaced when dependencies are built.
