file(REMOVE_RECURSE
  "CMakeFiles/newton_analyzer.dir/analyzer.cpp.o"
  "CMakeFiles/newton_analyzer.dir/analyzer.cpp.o.d"
  "CMakeFiles/newton_analyzer.dir/deferred.cpp.o"
  "CMakeFiles/newton_analyzer.dir/deferred.cpp.o.d"
  "CMakeFiles/newton_analyzer.dir/ground_truth.cpp.o"
  "CMakeFiles/newton_analyzer.dir/ground_truth.cpp.o.d"
  "CMakeFiles/newton_analyzer.dir/metrics.cpp.o"
  "CMakeFiles/newton_analyzer.dir/metrics.cpp.o.d"
  "libnewton_analyzer.a"
  "libnewton_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
