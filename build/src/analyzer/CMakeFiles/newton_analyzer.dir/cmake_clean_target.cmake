file(REMOVE_RECURSE
  "libnewton_analyzer.a"
)
