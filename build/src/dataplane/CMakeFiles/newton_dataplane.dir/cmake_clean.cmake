file(REMOVE_RECURSE
  "CMakeFiles/newton_dataplane.dir/forwarding.cpp.o"
  "CMakeFiles/newton_dataplane.dir/forwarding.cpp.o.d"
  "CMakeFiles/newton_dataplane.dir/pipeline.cpp.o"
  "CMakeFiles/newton_dataplane.dir/pipeline.cpp.o.d"
  "CMakeFiles/newton_dataplane.dir/register_array.cpp.o"
  "CMakeFiles/newton_dataplane.dir/register_array.cpp.o.d"
  "CMakeFiles/newton_dataplane.dir/resources.cpp.o"
  "CMakeFiles/newton_dataplane.dir/resources.cpp.o.d"
  "CMakeFiles/newton_dataplane.dir/rule_latency.cpp.o"
  "CMakeFiles/newton_dataplane.dir/rule_latency.cpp.o.d"
  "libnewton_dataplane.a"
  "libnewton_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
