file(REMOVE_RECURSE
  "libnewton_dataplane.a"
)
