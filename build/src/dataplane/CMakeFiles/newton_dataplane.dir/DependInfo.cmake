
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/forwarding.cpp" "src/dataplane/CMakeFiles/newton_dataplane.dir/forwarding.cpp.o" "gcc" "src/dataplane/CMakeFiles/newton_dataplane.dir/forwarding.cpp.o.d"
  "/root/repo/src/dataplane/pipeline.cpp" "src/dataplane/CMakeFiles/newton_dataplane.dir/pipeline.cpp.o" "gcc" "src/dataplane/CMakeFiles/newton_dataplane.dir/pipeline.cpp.o.d"
  "/root/repo/src/dataplane/register_array.cpp" "src/dataplane/CMakeFiles/newton_dataplane.dir/register_array.cpp.o" "gcc" "src/dataplane/CMakeFiles/newton_dataplane.dir/register_array.cpp.o.d"
  "/root/repo/src/dataplane/resources.cpp" "src/dataplane/CMakeFiles/newton_dataplane.dir/resources.cpp.o" "gcc" "src/dataplane/CMakeFiles/newton_dataplane.dir/resources.cpp.o.d"
  "/root/repo/src/dataplane/rule_latency.cpp" "src/dataplane/CMakeFiles/newton_dataplane.dir/rule_latency.cpp.o" "gcc" "src/dataplane/CMakeFiles/newton_dataplane.dir/rule_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/newton_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/newton_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
