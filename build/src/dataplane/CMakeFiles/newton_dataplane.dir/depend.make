# Empty dependencies file for newton_dataplane.
# This may be replaced when dependencies are built.
