# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("packet")
subdirs("sketch")
subdirs("trace")
subdirs("dataplane")
subdirs("core")
subdirs("analyzer")
subdirs("net")
subdirs("baselines")
