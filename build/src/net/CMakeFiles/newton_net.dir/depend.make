# Empty dependencies file for newton_net.
# This may be replaced when dependencies are built.
