file(REMOVE_RECURSE
  "libnewton_net.a"
)
