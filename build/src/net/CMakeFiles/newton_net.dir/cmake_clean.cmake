file(REMOVE_RECURSE
  "CMakeFiles/newton_net.dir/net_controller.cpp.o"
  "CMakeFiles/newton_net.dir/net_controller.cpp.o.d"
  "CMakeFiles/newton_net.dir/network.cpp.o"
  "CMakeFiles/newton_net.dir/network.cpp.o.d"
  "CMakeFiles/newton_net.dir/placement.cpp.o"
  "CMakeFiles/newton_net.dir/placement.cpp.o.d"
  "CMakeFiles/newton_net.dir/routing.cpp.o"
  "CMakeFiles/newton_net.dir/routing.cpp.o.d"
  "CMakeFiles/newton_net.dir/topology.cpp.o"
  "CMakeFiles/newton_net.dir/topology.cpp.o.d"
  "libnewton_net.a"
  "libnewton_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
