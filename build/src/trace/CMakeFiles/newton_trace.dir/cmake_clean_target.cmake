file(REMOVE_RECURSE
  "libnewton_trace.a"
)
