file(REMOVE_RECURSE
  "CMakeFiles/newton_trace.dir/attacks.cpp.o"
  "CMakeFiles/newton_trace.dir/attacks.cpp.o.d"
  "CMakeFiles/newton_trace.dir/pcap.cpp.o"
  "CMakeFiles/newton_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/newton_trace.dir/trace_gen.cpp.o"
  "CMakeFiles/newton_trace.dir/trace_gen.cpp.o.d"
  "CMakeFiles/newton_trace.dir/trace_io.cpp.o"
  "CMakeFiles/newton_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/newton_trace.dir/zipf.cpp.o"
  "CMakeFiles/newton_trace.dir/zipf.cpp.o.d"
  "libnewton_trace.a"
  "libnewton_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
