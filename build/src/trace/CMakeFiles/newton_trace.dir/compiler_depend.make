# Empty compiler generated dependencies file for newton_trace.
# This may be replaced when dependencies are built.
