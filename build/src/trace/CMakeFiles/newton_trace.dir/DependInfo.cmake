
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/attacks.cpp" "src/trace/CMakeFiles/newton_trace.dir/attacks.cpp.o" "gcc" "src/trace/CMakeFiles/newton_trace.dir/attacks.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/trace/CMakeFiles/newton_trace.dir/pcap.cpp.o" "gcc" "src/trace/CMakeFiles/newton_trace.dir/pcap.cpp.o.d"
  "/root/repo/src/trace/trace_gen.cpp" "src/trace/CMakeFiles/newton_trace.dir/trace_gen.cpp.o" "gcc" "src/trace/CMakeFiles/newton_trace.dir/trace_gen.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/newton_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/newton_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/zipf.cpp" "src/trace/CMakeFiles/newton_trace.dir/zipf.cpp.o" "gcc" "src/trace/CMakeFiles/newton_trace.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/newton_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
