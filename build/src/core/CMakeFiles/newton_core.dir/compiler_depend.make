# Empty compiler generated dependencies file for newton_core.
# This may be replaced when dependencies are built.
