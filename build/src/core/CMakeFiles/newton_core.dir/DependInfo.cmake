
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compose.cpp" "src/core/CMakeFiles/newton_core.dir/compose.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/compose.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/newton_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/cqe.cpp" "src/core/CMakeFiles/newton_core.dir/cqe.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/cqe.cpp.o.d"
  "/root/repo/src/core/decompose.cpp" "src/core/CMakeFiles/newton_core.dir/decompose.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/decompose.cpp.o.d"
  "/root/repo/src/core/dump.cpp" "src/core/CMakeFiles/newton_core.dir/dump.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/dump.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/newton_core.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/layout.cpp.o.d"
  "/root/repo/src/core/modules.cpp" "src/core/CMakeFiles/newton_core.dir/modules.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/modules.cpp.o.d"
  "/root/repo/src/core/newton_switch.cpp" "src/core/CMakeFiles/newton_core.dir/newton_switch.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/newton_switch.cpp.o.d"
  "/root/repo/src/core/p4gen.cpp" "src/core/CMakeFiles/newton_core.dir/p4gen.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/p4gen.cpp.o.d"
  "/root/repo/src/core/parse_query.cpp" "src/core/CMakeFiles/newton_core.dir/parse_query.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/parse_query.cpp.o.d"
  "/root/repo/src/core/queries.cpp" "src/core/CMakeFiles/newton_core.dir/queries.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/queries.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/core/CMakeFiles/newton_core.dir/query.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/query.cpp.o.d"
  "/root/repo/src/core/range_alloc.cpp" "src/core/CMakeFiles/newton_core.dir/range_alloc.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/range_alloc.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/newton_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/newton_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/newton_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/newton_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/newton_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
