file(REMOVE_RECURSE
  "CMakeFiles/newton_core.dir/compose.cpp.o"
  "CMakeFiles/newton_core.dir/compose.cpp.o.d"
  "CMakeFiles/newton_core.dir/controller.cpp.o"
  "CMakeFiles/newton_core.dir/controller.cpp.o.d"
  "CMakeFiles/newton_core.dir/cqe.cpp.o"
  "CMakeFiles/newton_core.dir/cqe.cpp.o.d"
  "CMakeFiles/newton_core.dir/decompose.cpp.o"
  "CMakeFiles/newton_core.dir/decompose.cpp.o.d"
  "CMakeFiles/newton_core.dir/dump.cpp.o"
  "CMakeFiles/newton_core.dir/dump.cpp.o.d"
  "CMakeFiles/newton_core.dir/layout.cpp.o"
  "CMakeFiles/newton_core.dir/layout.cpp.o.d"
  "CMakeFiles/newton_core.dir/modules.cpp.o"
  "CMakeFiles/newton_core.dir/modules.cpp.o.d"
  "CMakeFiles/newton_core.dir/newton_switch.cpp.o"
  "CMakeFiles/newton_core.dir/newton_switch.cpp.o.d"
  "CMakeFiles/newton_core.dir/p4gen.cpp.o"
  "CMakeFiles/newton_core.dir/p4gen.cpp.o.d"
  "CMakeFiles/newton_core.dir/parse_query.cpp.o"
  "CMakeFiles/newton_core.dir/parse_query.cpp.o.d"
  "CMakeFiles/newton_core.dir/queries.cpp.o"
  "CMakeFiles/newton_core.dir/queries.cpp.o.d"
  "CMakeFiles/newton_core.dir/query.cpp.o"
  "CMakeFiles/newton_core.dir/query.cpp.o.d"
  "CMakeFiles/newton_core.dir/range_alloc.cpp.o"
  "CMakeFiles/newton_core.dir/range_alloc.cpp.o.d"
  "CMakeFiles/newton_core.dir/scheduler.cpp.o"
  "CMakeFiles/newton_core.dir/scheduler.cpp.o.d"
  "libnewton_core.a"
  "libnewton_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
