file(REMOVE_RECURSE
  "libnewton_core.a"
)
