file(REMOVE_RECURSE
  "CMakeFiles/newton_baselines.dir/export_model.cpp.o"
  "CMakeFiles/newton_baselines.dir/export_model.cpp.o.d"
  "CMakeFiles/newton_baselines.dir/sonata.cpp.o"
  "CMakeFiles/newton_baselines.dir/sonata.cpp.o.d"
  "CMakeFiles/newton_baselines.dir/sonata_refinement.cpp.o"
  "CMakeFiles/newton_baselines.dir/sonata_refinement.cpp.o.d"
  "libnewton_baselines.a"
  "libnewton_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
