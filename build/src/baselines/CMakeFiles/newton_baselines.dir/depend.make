# Empty dependencies file for newton_baselines.
# This may be replaced when dependencies are built.
