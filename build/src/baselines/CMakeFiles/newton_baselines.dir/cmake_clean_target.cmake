file(REMOVE_RECURSE
  "libnewton_baselines.a"
)
