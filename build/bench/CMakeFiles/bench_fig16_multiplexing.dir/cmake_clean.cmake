file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_multiplexing.dir/bench_fig16_multiplexing.cpp.o"
  "CMakeFiles/bench_fig16_multiplexing.dir/bench_fig16_multiplexing.cpp.o.d"
  "bench_fig16_multiplexing"
  "bench_fig16_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
