file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cqe.dir/bench_fig13_cqe.cpp.o"
  "CMakeFiles/bench_fig13_cqe.dir/bench_fig13_cqe.cpp.o.d"
  "bench_fig13_cqe"
  "bench_fig13_cqe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cqe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
