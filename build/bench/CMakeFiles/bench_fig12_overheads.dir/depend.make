# Empty dependencies file for bench_fig12_overheads.
# This may be replaced when dependencies are built.
