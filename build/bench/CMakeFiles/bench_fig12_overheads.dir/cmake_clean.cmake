file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overheads.dir/bench_fig12_overheads.cpp.o"
  "CMakeFiles/bench_fig12_overheads.dir/bench_fig12_overheads.cpp.o.d"
  "bench_fig12_overheads"
  "bench_fig12_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
