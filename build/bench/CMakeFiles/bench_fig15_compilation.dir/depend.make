# Empty dependencies file for bench_fig15_compilation.
# This may be replaced when dependencies are built.
