file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_compilation.dir/bench_fig15_compilation.cpp.o"
  "CMakeFiles/bench_fig15_compilation.dir/bench_fig15_compilation.cpp.o.d"
  "bench_fig15_compilation"
  "bench_fig15_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
