file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_interruption.dir/bench_fig10_interruption.cpp.o"
  "CMakeFiles/bench_fig10_interruption.dir/bench_fig10_interruption.cpp.o.d"
  "bench_fig10_interruption"
  "bench_fig10_interruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_interruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
