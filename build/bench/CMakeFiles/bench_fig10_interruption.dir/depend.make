# Empty dependencies file for bench_fig10_interruption.
# This may be replaced when dependencies are built.
