# Empty dependencies file for bench_fig17_placement.
# This may be replaced when dependencies are built.
