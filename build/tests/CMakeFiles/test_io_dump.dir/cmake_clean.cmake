file(REMOVE_RECURSE
  "CMakeFiles/test_io_dump.dir/test_io_dump.cpp.o"
  "CMakeFiles/test_io_dump.dir/test_io_dump.cpp.o.d"
  "test_io_dump"
  "test_io_dump.pdb"
  "test_io_dump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
