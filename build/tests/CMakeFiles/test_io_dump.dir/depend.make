# Empty dependencies file for test_io_dump.
# This may be replaced when dependencies are built.
