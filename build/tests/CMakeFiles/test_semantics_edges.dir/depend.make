# Empty dependencies file for test_semantics_edges.
# This may be replaced when dependencies are built.
