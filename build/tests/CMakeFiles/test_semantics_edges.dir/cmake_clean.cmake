file(REMOVE_RECURSE
  "CMakeFiles/test_semantics_edges.dir/test_semantics_edges.cpp.o"
  "CMakeFiles/test_semantics_edges.dir/test_semantics_edges.cpp.o.d"
  "test_semantics_edges"
  "test_semantics_edges.pdb"
  "test_semantics_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantics_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
