file(REMOVE_RECURSE
  "CMakeFiles/test_net_fattree.dir/test_net_fattree.cpp.o"
  "CMakeFiles/test_net_fattree.dir/test_net_fattree.cpp.o.d"
  "test_net_fattree"
  "test_net_fattree.pdb"
  "test_net_fattree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
