file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_compile.dir/test_fuzz_compile.cpp.o"
  "CMakeFiles/test_fuzz_compile.dir/test_fuzz_compile.cpp.o.d"
  "test_fuzz_compile"
  "test_fuzz_compile.pdb"
  "test_fuzz_compile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
