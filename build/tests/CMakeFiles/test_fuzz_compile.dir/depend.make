# Empty dependencies file for test_fuzz_compile.
# This may be replaced when dependencies are built.
