# Empty dependencies file for test_queries_e2e.
# This may be replaced when dependencies are built.
