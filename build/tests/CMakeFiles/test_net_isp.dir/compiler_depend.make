# Empty compiler generated dependencies file for test_net_isp.
# This may be replaced when dependencies are built.
