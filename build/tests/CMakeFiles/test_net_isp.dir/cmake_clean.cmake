file(REMOVE_RECURSE
  "CMakeFiles/test_net_isp.dir/test_net_isp.cpp.o"
  "CMakeFiles/test_net_isp.dir/test_net_isp.cpp.o.d"
  "test_net_isp"
  "test_net_isp.pdb"
  "test_net_isp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
