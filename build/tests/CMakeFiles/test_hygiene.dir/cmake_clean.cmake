file(REMOVE_RECURSE
  "CMakeFiles/test_hygiene.dir/test_hygiene.cpp.o"
  "CMakeFiles/test_hygiene.dir/test_hygiene.cpp.o.d"
  "test_hygiene"
  "test_hygiene.pdb"
  "test_hygiene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hygiene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
