# Empty dependencies file for test_hygiene.
# This may be replaced when dependencies are built.
