
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_compose.cpp" "tests/CMakeFiles/test_compose.dir/test_compose.cpp.o" "gcc" "tests/CMakeFiles/test_compose.dir/test_compose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/newton_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/newton_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/newton_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/newton_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/newton_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/newton_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/newton_net.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/newton_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
