# Empty dependencies file for test_parse_query.
# This may be replaced when dependencies are built.
