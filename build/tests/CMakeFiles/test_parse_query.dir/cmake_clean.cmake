file(REMOVE_RECURSE
  "CMakeFiles/test_parse_query.dir/test_parse_query.cpp.o"
  "CMakeFiles/test_parse_query.dir/test_parse_query.cpp.o.d"
  "test_parse_query"
  "test_parse_query.pdb"
  "test_parse_query[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parse_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
