file(REMOVE_RECURSE
  "CMakeFiles/test_forwarding.dir/test_forwarding.cpp.o"
  "CMakeFiles/test_forwarding.dir/test_forwarding.cpp.o.d"
  "test_forwarding"
  "test_forwarding.pdb"
  "test_forwarding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
