file(REMOVE_RECURSE
  "CMakeFiles/test_cqe.dir/test_cqe.cpp.o"
  "CMakeFiles/test_cqe.dir/test_cqe.cpp.o.d"
  "test_cqe"
  "test_cqe.pdb"
  "test_cqe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cqe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
