# Empty dependencies file for test_cqe.
# This may be replaced when dependencies are built.
