# Empty dependencies file for ddos_drilldown.
# This may be replaced when dependencies are built.
