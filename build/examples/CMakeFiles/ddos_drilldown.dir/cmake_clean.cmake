file(REMOVE_RECURSE
  "CMakeFiles/ddos_drilldown.dir/ddos_drilldown.cpp.o"
  "CMakeFiles/ddos_drilldown.dir/ddos_drilldown.cpp.o.d"
  "ddos_drilldown"
  "ddos_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
