file(REMOVE_RECURSE
  "CMakeFiles/newton_tool.dir/newton_tool.cpp.o"
  "CMakeFiles/newton_tool.dir/newton_tool.cpp.o.d"
  "newton_tool"
  "newton_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
