# Empty dependencies file for newton_tool.
# This may be replaced when dependencies are built.
